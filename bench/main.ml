(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and runs Bechamel micro-benchmarks of
   the core primitives.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- figure4      -- one artifact
     dune exec bench/main.exe -- table3
     dune exec bench/main.exe -- table1
     dune exec bench/main.exe -- figure2
     dune exec bench/main.exe -- applicability
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- micro
*)

module E = Cgcm_core.Experiments
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Runtime = Cgcm_runtime.Runtime
module Avl = Cgcm_support.Avl_map.Int
module Pass = Cgcm_transform.Pass
module Manager = Pass.Manager

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* The paper's artifacts                                               *)

let suite_results = ref None

let get_suite () =
  match !suite_results with
  | Some r -> r
  | None ->
    let r =
      E.run_suite ~progress:(fun name -> Fmt.epr "  running %s...@." name) ()
    in
    suite_results := Some r;
    r

let figure4 () =
  section "Figure 4: whole-program speedups (24 programs)";
  print_string (E.figure4 (get_suite ()))

let table3 () =
  section "Table 3: program characteristics";
  print_string (E.table3 (get_suite ()))

let table1 () =
  section "Table 1: communication-system applicability";
  print_string (E.table1 ())

let figure1 () =
  section "Figure 1: taxonomy of related work";
  print_string (E.figure1 ())

let figure3 () =
  section "Figure 3: system overview";
  print_string (E.figure3 ())

let figure2 () =
  section "Figure 2: execution schedules";
  print_string (E.figure2 ())

let applicability () =
  section "Section 6 applicability claim";
  print_string (E.applicability (get_suite ()))

let volume () =
  section "Communication volume (extension)";
  print_string (E.volume_table (get_suite ()))

let breakdown () =
  section "Time breakdown (extension)";
  print_string (E.breakdown_table (get_suite ()))

let ablation () =
  section "Ablation: optimization passes in isolation";
  print_string (E.ablation ())

let sweep () =
  section "Cost-model sensitivity sweep (extension)";
  print_string (E.latency_sweep ())

let validate () =
  section "Claim validation";
  let text, ok = Cgcm_core.Validate.report (get_suite ()) in
  print_string text;
  if not ok then exit 1

let check_outputs () =
  let bad = List.filter (fun r -> not r.E.outputs_match) (get_suite ()) in
  if bad = [] then
    Fmt.pr "@.All 24 programs produce identical output in every mode.@."
  else
    List.iter
      (fun r ->
        Fmt.pr "!! OUTPUT MISMATCH: %s@." r.E.prog.Cgcm_progs.Registry.name)
      bad

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)

let bench_avl =
  let t = ref Avl.empty in
  for i = 0 to 255 do
    t := Avl.add (i * 64) i !t
  done;
  let t = !t in
  Bechamel.Test.make ~name:"avl-greatest-leq-256-units"
    (Bechamel.Staged.stage (fun () -> Avl.greatest_leq 8191 t))

let mk_runtime () =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000_00
  in
  let dev = Device.create Cost_model.default in
  let rt = Runtime.create ~host ~dev () in
  let base = Memspace.alloc host 4096 in
  Runtime.register_heap rt ~base ~size:4096;
  (rt, base)

let bench_map_release =
  let rt, base = mk_runtime () in
  Bechamel.Test.make ~name:"runtime-map-release-4KiB"
    (Bechamel.Staged.stage (fun () ->
         let d = Runtime.map rt base in
         Runtime.release rt base;
         d))

let bench_map_resident =
  let rt, base = mk_runtime () in
  ignore (Runtime.map rt base);
  Bechamel.Test.make ~name:"runtime-map-release-resident"
    (Bechamel.Staged.stage (fun () ->
         let d = Runtime.map rt base in
         Runtime.release rt base;
         d))

let bench_memspace =
  let m = Memspace.create ~name:"bench" ~range_lo:0x1000 ~range_hi:0x100_0000 in
  let a = Memspace.alloc m 8192 in
  Bechamel.Test.make ~name:"memspace-load-f64"
    (Bechamel.Staged.stage (fun () -> Memspace.load_f64 m (a + 4096)))

let bench_compile =
  let src = Cgcm_progs.Polybench.gemm ~n:8 () in
  Bechamel.Test.make ~name:"pipeline-compile-gemm"
    (Bechamel.Staged.stage (fun () ->
         Pipeline.compile ~level:Pipeline.Optimized src))

let bench_interp =
  let src = Cgcm_progs.Polybench.gemm ~n:6 () in
  lazy
    (let c = Pipeline.compile ~level:Pipeline.Optimized src in
     Bechamel.Test.make ~name:"interp-run-gemm-n6"
       (Bechamel.Staged.stage (fun () -> Interp.run c.Pipeline.modul)))

(* The same program under the tree-walking engine: the micro table's
   interp-dispatch A/B. *)
let bench_interp_tree =
  let src = Cgcm_progs.Polybench.gemm ~n:6 () in
  lazy
    (let c = Pipeline.compile ~level:Pipeline.Optimized src in
     let cfg = { Interp.default_config with Interp.engine = Interp.Tree_walk } in
     Bechamel.Test.make ~name:"interp-run-gemm-n6-tree"
       (Bechamel.Staged.stage (fun () -> Interp.run ~config:cfg c.Pipeline.modul)))

(* A larger gemm under the closure engine and under the domain-pool
   engine at 4 jobs: the host-parallelism A/B (trip 24 clears the
   default sharding threshold). *)
let bench_interp_par =
  let src = Cgcm_progs.Polybench.gemm ~n:24 () in
  lazy
    (let c = Pipeline.compile ~level:Pipeline.Optimized src in
     let seq_cfg =
       { Interp.default_config with Interp.engine = Interp.Closures }
     in
     let par_cfg =
       { Interp.default_config with Interp.engine = Interp.Parallel; jobs = 4 }
     in
     [
       Bechamel.Test.make ~name:"interp-run-gemm-n24"
         (Bechamel.Staged.stage (fun () ->
              Interp.run ~config:seq_cfg c.Pipeline.modul));
       Bechamel.Test.make ~name:"interp-run-gemm-n24-par-j4"
         (Bechamel.Staged.stage (fun () ->
              Interp.run ~config:par_cfg c.Pipeline.modul));
     ])

let micro_rows () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"cgcm"
      ([
        bench_avl;
        bench_memspace;
        bench_map_release;
        bench_map_resident;
        bench_compile;
        Lazy.force bench_interp;
        Lazy.force bench_interp_tree;
      ]
      @ Lazy.force bench_interp_par)
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> Some e | _ -> None
      in
      (name, est) :: acc)
    results []
  |> List.sort compare

let micro () =
  section "Bechamel micro-benchmarks (ns per operation)";
  let rows =
    List.map
      (fun (name, est) ->
        [
          name;
          (match est with Some e -> Printf.sprintf "%.1f" e | None -> "n/a");
        ])
      (micro_rows ())
  in
  print_string
    (Cgcm_report.Table.render
       ~aligns:[ Cgcm_report.Table.Left; Cgcm_report.Table.Right ]
       ~header:[ "benchmark"; "ns/op" ] rows)

(* ------------------------------------------------------------------ *)
(* micro --json: the machine-readable performance baseline             *)

(* Emits BENCH_5.json: the micro table, an honest A/B of the three
   interpreter engines over the whole 24-program suite (same binary, the
   tree-walker is the pre-optimisation interpreter kept behind the
   engine flag; the parallel engine shards kernel launches across a
   domain pool), the dirty-span transfer volumes against whole-unit
   copies, and the compile-time A/B of the caching analysis manager
   against the restart-from-scratch discipline the mid-end used to run
   with. Host wall-clock numbers are whatever the machine gives —
   "host_cores" records how much hardware parallelism was actually
   available, because a domain pool cannot beat the clock on one core. *)
let micro_json () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"cgcm-bench-5\",\n";
  (* 1. micro-benchmarks *)
  add "  \"micro_ns_per_op\": {\n";
  let rows = micro_rows () in
  List.iteri
    (fun i (name, est) ->
      add "    %S: %s%s\n" name
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  },\n";
  (* 2. suite wall-clock, both engines *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Fmt.epr "  timing suite under the closure engine...@.";
  let closures_res, closures_s =
    time (fun () -> E.run_suite ~engine:Interp.Closures ())
  in
  Fmt.epr "  timing suite under the tree-walk engine...@.";
  let tree_res, tree_s = time (fun () -> E.run_suite ~engine:Interp.Tree_walk ()) in
  let agree a b =
    a.E.outputs_match && b.E.outputs_match
    && a.E.opt.Interp.output = b.E.opt.Interp.output
    && a.E.opt.Interp.wall = b.E.opt.Interp.wall
    && a.E.ie.Interp.wall = b.E.ie.Interp.wall
    && a.E.unopt.Interp.wall = b.E.unopt.Interp.wall
  in
  let engines_agree = List.for_all2 agree closures_res tree_res in
  add "  \"suite\": {\n";
  add "    \"programs\": %d,\n" (List.length closures_res);
  add "    \"closures_wall_s\": %.3f,\n" closures_s;
  add "    \"tree_walk_wall_s\": %.3f,\n" tree_s;
  add "    \"speedup\": %.2f,\n" (tree_s /. closures_s);
  add "    \"engines_agree\": %b\n" engines_agree;
  add "  },\n";
  (* 2b. the parallel engine over the same suite: simulated clocks,
     outputs, launch and transfer counts must be unchanged (the sharding
     is invisible to the simulation); host wall-clock scales with
     whatever cores the machine has *)
  let jobs = 4 in
  Fmt.epr "  timing suite under the parallel engine (%d jobs)...@." jobs;
  let par_res, par_s =
    time (fun () -> E.run_suite ~engine:Interp.Parallel ~jobs ())
  in
  let sim_stats_unchanged =
    List.for_all2
      (fun a b ->
        agree a b
        && a.E.opt.Interp.dev_stats = b.E.opt.Interp.dev_stats
        && a.E.opt.Interp.rt_stats = b.E.opt.Interp.rt_stats
        && a.E.opt.Interp.kernel_insts = b.E.opt.Interp.kernel_insts)
      closures_res par_res
  in
  add "  \"parallel\": {\n";
  add "    \"jobs\": %d,\n" jobs;
  let host_cores = Domain.recommended_domain_count () in
  add "    \"host_cores\": %d,\n" host_cores;
  (* A domain pool cannot beat the clock on one core: the numbers are
     still valid measurements, but not of parallel speedup. Flag them so
     downstream comparisons (CI baselines, BENCH artifacts) don't read a
     single-core slowdown as a regression. *)
  if host_cores <= 1 then begin
    Fmt.epr
      "  warning: only %d host core available — parallel-engine timings \
       are degraded (pool overhead, no parallel speedup)@."
      host_cores;
    add "    \"degraded\": true,\n"
  end;
  add "    \"parallel_wall_s\": %.3f,\n" par_s;
  add "    \"speedup_vs_closures\": %.2f,\n" (closures_s /. par_s);
  add "    \"engines_agree\": %b,\n" sim_stats_unchanged;
  (* large-trip kernels are where sharding has room to pay off: time the
     biggest DOALL programs individually under both engines *)
  let large = [ "gemm"; "2mm"; "3mm"; "cfd"; "blackscholes" ] in
  add "    \"large_trip\": {\n";
  List.iteri
    (fun i name ->
      let prog = Option.get (Cgcm_progs.Registry.find name) in
      let src = prog.Cgcm_progs.Registry.source in
      let once engine jobs =
        snd
          (time (fun () ->
               ignore
                 (Pipeline.run ~engine ~jobs Pipeline.Cgcm_optimized src)))
      in
      let seq_s = once Interp.Closures 0 in
      let par_s = once Interp.Parallel jobs in
      add "      %S: { \"closures_s\": %.3f, \"parallel_s\": %.3f, \"speedup\": %.2f }%s\n"
        name seq_s par_s (seq_s /. par_s)
        (if i = List.length large - 1 then "" else ","))
    large;
  add "    }\n";
  add "  },\n";
  (* 3. dirty-span transfer volumes: optimized runs with the span
     tracker on (default) vs forced whole-unit copies *)
  let bytes_of (r : Interp.result) =
    r.Interp.dev_stats.Device.htod_bytes + r.Interp.dev_stats.Device.dtoh_bytes
  in
  let dirty_on, saved, partial =
    List.fold_left
      (fun (b, s, p) r ->
        ( b + bytes_of r.E.opt,
          s + r.E.opt.Interp.rt_stats.Runtime.bytes_saved,
          p + r.E.opt.Interp.rt_stats.Runtime.partial_copies ))
      (0, 0, 0) closures_res
  in
  Fmt.epr "  re-running optimized configs with dirty spans off...@.";
  let dirty_off =
    List.fold_left
      (fun b (p : Cgcm_progs.Registry.program) ->
        let _, r =
          Pipeline.run ~dirty_spans:false Pipeline.Cgcm_optimized p.source
        in
        b + bytes_of r)
      0 Cgcm_progs.Registry.all
  in
  add "  \"dirty_spans\": {\n";
  add "    \"opt_bytes_with_spans\": %d,\n" dirty_on;
  add "    \"opt_bytes_whole_unit\": %d,\n" dirty_off;
  add "    \"bytes_saved\": %d,\n" saved;
  add "    \"partial_copies\": %d\n" partial;
  add "  },\n";
  (* 4. compile-time: the caching analysis manager vs the
     restart-from-scratch discipline (every analysis query recomputed,
     which is what the mid-end did before the manager existed). Same
     optimized pipeline, same programs; only the cache policy differs. *)
  let reps = 5 in
  let compile_suite analysis =
    let per_pass = Hashtbl.create 8 in
    let cache = Hashtbl.create 8 in
    let total = ref 0.0 in
    for _ = 1 to reps do
      List.iter
        (fun (p : Cgcm_progs.Registry.program) ->
          let c =
            Pipeline.compile ~level:Pipeline.Optimized ~analysis
              p.Cgcm_progs.Registry.source
          in
          List.iter
            (fun (s : Pass.pass_stat) ->
              let cur =
                try Hashtbl.find per_pass s.Pass.ps_pass with Not_found -> 0.0
              in
              Hashtbl.replace per_pass s.Pass.ps_pass (cur +. s.Pass.ps_wall_ms);
              total := !total +. s.Pass.ps_wall_ms)
            c.Pipeline.pass_stats;
          List.iter
            (fun (n, h, m) ->
              let h0, m0 = try Hashtbl.find cache n with Not_found -> (0, 0) in
              Hashtbl.replace cache n (h0 + h, m0 + m))
            c.Pipeline.cache_stats)
        Cgcm_progs.Registry.all
    done;
    (per_pass, cache, !total)
  in
  Fmt.epr "  timing the optimized pipeline with cached analyses...@.";
  let cached_pass, cached_cache, cached_ms = compile_suite Manager.Cached in
  Fmt.epr "  timing the optimized pipeline with uncached analyses...@.";
  let unc_pass, unc_cache, unc_ms = compile_suite Manager.Uncached in
  let add_side name (per_pass, cache, total_ms) last =
    add "    %S: {\n" name;
    add "      \"total_ms\": %.2f,\n" total_ms;
    add "      \"per_pass_ms\": {\n";
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_pass [] |> List.sort compare
    in
    List.iteri
      (fun i (k, v) ->
        add "        %S: %.2f%s\n" k v
          (if i = List.length rows - 1 then "" else ","))
      rows;
    add "      },\n";
    add "      \"analysis_cache\": {\n";
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache [] |> List.sort compare
    in
    List.iteri
      (fun i (k, (h, m)) ->
        add "        %S: { \"hits\": %d, \"misses\": %d }%s\n" k h m
          (if i = List.length rows - 1 then "" else ","))
      rows;
    add "      }\n";
    add "    }%s\n" (if last then "" else ",")
  in
  add "  \"compile\": {\n";
  add "    \"programs\": %d,\n" (List.length Cgcm_progs.Registry.all);
  add "    \"reps\": %d,\n" reps;
  add_side "cached" (cached_pass, cached_cache, cached_ms) false;
  add_side "uncached" (unc_pass, unc_cache, unc_ms) false;
  add "    \"speedup\": %.2f\n" (unc_ms /. cached_ms);
  add "  }\n";
  add "}\n";
  let path = "BENCH_5.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* serve: daemon load benchmark -> BENCH_7.json                        *)

(* Forks the daemon, drives it with the deterministic load generator at
   two fault seeds, and emits requests/sec, p50/p99 latency, shed rate
   and cache hit rate. The two seeds double as a stability gate: the
   robustness envelope (admission, deadlines, retries, breakers) should
   make throughput and tail latency insensitive to *which* faults fire,
   so a >2x swing between seeds is a regression. *)
let serve_seeds = ref [ 11; 23 ]

let serve_json () =
  section "cgcm serve: daemon load benchmark";
  let tenants = 4 and requests = 120 and burst = 16 and max_queue = 8 in
  let fault_plan seed = Printf.sprintf "%d:htod%%0.02,launch%%0.02" seed in
  let run_one seed =
    let socket =
      Printf.sprintf "/tmp/cgcm-bench-serve-%d-%d.sock" (Unix.getpid ()) seed
    in
    Fmt.epr "  seed %d: forking daemon on %s...@." seed socket;
    flush_all ();
    match Unix.fork () with
    | 0 ->
      let config =
        {
          Cgcm_serve.Engine.default_config with
          Cgcm_serve.Engine.max_queue;
          faults = Some (Cgcm_gpusim.Faults.parse (fault_plan seed));
        }
      in
      let server =
        Cgcm_serve.Server.create ~engine_config:config ~socket_path:socket ()
      in
      let _line, residual = Cgcm_serve.Server.run server in
      Unix._exit (if residual = 0 then 0 else 1)
    | pid ->
      if not (Cgcm_serve.Client.wait_ready ~socket_path:socket ()) then
        failwith "serve bench: daemon did not come up";
      let report =
        Cgcm_serve.Loadgen.run ~socket_path:socket ~tenants ~requests ~burst
          ~seed ()
      in
      ignore (Cgcm_serve.Client.shutdown ~socket_path:socket : bool);
      let _, status = Unix.waitpid [] pid in
      (report, status = Unix.WEXITED 0)
  in
  let runs = List.map (fun seed -> (seed, run_one seed)) !serve_seeds in
  (* Stability between seeds, with floors so sub-millisecond noise and
     near-zero rates cannot fabricate a huge ratio. *)
  let ratio ~floor a b =
    let a = Float.max a floor and b = Float.max b floor in
    Float.max a b /. Float.min a b
  in
  let p99s = List.map (fun (_, (r, _)) -> r.Cgcm_serve.Loadgen.lr_p99_ms) runs in
  let sheds =
    List.map (fun (_, (r, _)) -> r.Cgcm_serve.Loadgen.lr_shed_rate) runs
  in
  let spread ~floor = function
    | [] | [ _ ] -> 1.0
    | x :: rest -> List.fold_left (fun acc y -> Float.max acc (ratio ~floor x y)) 1.0 rest
  in
  let p99_ratio = spread ~floor:5.0 p99s in
  let shed_ratio = spread ~floor:0.01 sheds in
  let within_bounds = p99_ratio <= 2.0 && shed_ratio <= 2.0 in
  let all_clean = List.for_all (fun (_, (_, clean)) -> clean) runs in
  let envelope_exercised =
    List.for_all
      (fun (_, (r, _)) ->
        r.Cgcm_serve.Loadgen.lr_shed > 0
        && r.Cgcm_serve.Loadgen.lr_deadline > 0
        && r.Cgcm_serve.Loadgen.lr_cache_hit_rate > 0.0)
      runs
  in
  let json : Cgcm_serve.Json.t =
    Obj
      [
        ("schema", Cgcm_serve.Json.Str "cgcm-bench-7");
        ( "config",
          Obj
            [
              ("tenants", Cgcm_serve.Json.Int tenants);
              ("requests", Cgcm_serve.Json.Int requests);
              ("burst", Cgcm_serve.Json.Int burst);
              ("max_queue", Cgcm_serve.Json.Int max_queue);
              ("fault_plan", Cgcm_serve.Json.Str (fault_plan 0));
            ] );
        ( "seeds",
          Obj
            (List.map
               (fun (seed, (r, clean)) ->
                 ( string_of_int seed,
                   match Cgcm_serve.Loadgen.report_json r with
                   | Obj fields ->
                     Cgcm_serve.Json.Obj
                       (fields
                       @ [ ("clean_shutdown", Cgcm_serve.Json.Bool clean) ])
                   | other -> other ))
               runs) );
        ( "stability",
          Obj
            [
              ("p99_ratio", Cgcm_serve.Json.Float p99_ratio);
              ("shed_rate_ratio", Cgcm_serve.Json.Float shed_ratio);
              ("within_bounds", Cgcm_serve.Json.Bool within_bounds);
              ("clean_shutdowns", Cgcm_serve.Json.Bool all_clean);
              ("envelope_exercised", Cgcm_serve.Json.Bool envelope_exercised);
            ] );
      ]
  in
  let path = "BENCH_7.json" in
  let oc = open_out path in
  output_string oc (Cgcm_serve.Json.print json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "%s@." (Cgcm_serve.Json.print json);
  Fmt.pr "wrote %s@." path;
  if not all_clean then begin
    Fmt.epr "serve bench: daemon did not shut down cleanly@.";
    exit 1
  end;
  if not envelope_exercised then begin
    Fmt.epr
      "serve bench: robustness envelope not exercised (need sheds, \
       deadlines and cache hits at every seed)@.";
    exit 1
  end;
  if not within_bounds then begin
    Fmt.epr
      "serve bench: seed instability (p99 ratio %.2f, shed-rate ratio \
       %.2f; bound 2.0)@."
      p99_ratio shed_ratio;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* serve --shards: sharded-daemon scaling matrix -> BENCH_9.json       *)

(* Forks one daemon per (shard count, seed) cell and drives the same
   deterministic burst load at each, measuring req/s and tail latency.
   Gates: every daemon shuts down clean and leak-free; cross-seed
   stability holds at every shard count (the envelope should make
   throughput insensitive to which seed drives it); and on a multi-core
   host the largest shard count must deliver >= 2x the req/s of
   shards=1. On a single-core host the numbers are still valid
   measurements — of overhead, not scaling — so the matrix is flagged
   degraded and the speedup gate is waived. *)
let serve_shard_counts = ref [ 1; 2; 4 ]

let serve_shards_json () =
  section "cgcm serve --shards: scaling matrix";
  (* tenants=4 lands one tenant per shard at the matrix top (the FNV
     placement of t0..t3 over 4 shards is 1:1), so each shard sees a
     single-tenant stream and the cross-request batcher gets real runs;
     max_queue=32 >= burst means nothing sheds at any shard count —
     every cell executes the same work, so req/s compare fairly *)
  let tenants = 4 and requests = 160 and burst = 16 and max_queue = 32 in
  let host_cores = Domain.recommended_domain_count () in
  let degraded = host_cores <= 1 in
  let run_one ~shards ~seed =
    let socket =
      Printf.sprintf "/tmp/cgcm-bench-shards-%d-%d-%d.sock" (Unix.getpid ())
        shards seed
    in
    Fmt.epr "  shards=%d seed=%d: forking daemon on %s...@." shards seed
      socket;
    flush_all ();
    match Unix.fork () with
    | 0 ->
      let config =
        { Cgcm_serve.Engine.default_config with Cgcm_serve.Engine.max_queue }
      in
      let server =
        Cgcm_serve.Server.create ~engine_config:config ~shards
          ~socket_path:socket ()
      in
      let _line, residual = Cgcm_serve.Server.run server in
      Unix._exit (if residual = 0 then 0 else 1)
    | pid ->
      if not (Cgcm_serve.Client.wait_ready ~socket_path:socket ()) then
        failwith "serve shards bench: daemon did not come up";
      (* pure-throughput load: no poison tenant, no daemon fault plan —
         BENCH_7 owns the robustness envelope; this matrix isolates the
         scaling of the request path itself *)
      let report =
        Cgcm_serve.Loadgen.run ~socket_path:socket ~tenants ~requests ~burst
          ~poison:false ~seed ()
      in
      let stats = Cgcm_serve.Client.stats ~socket_path:socket in
      ignore (Cgcm_serve.Client.shutdown ~socket_path:socket : bool);
      let _, status = Unix.waitpid [] pid in
      (report, stats, status = Unix.WEXITED 0)
  in
  let cells =
    List.concat_map
      (fun shards ->
        List.map
          (fun seed -> ((shards, seed), run_one ~shards ~seed))
          !serve_seeds)
      !serve_shard_counts
  in
  let ratio ~floor a b =
    let a = Float.max a floor and b = Float.max b floor in
    Float.max a b /. Float.min a b
  in
  let spread ~floor = function
    | [] | [ _ ] -> 1.0
    | x :: rest ->
      List.fold_left (fun acc y -> Float.max acc (ratio ~floor x y)) 1.0 rest
  in
  let mean = function
    | [] -> 0.0
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let rps_of shards =
    mean
      (List.filter_map
         (fun ((s, _), (r, _, _)) ->
           if s = shards then Some r.Cgcm_serve.Loadgen.lr_rps else None)
         cells)
  in
  (* cross-seed stability per shard count, same floors/bound as BENCH_7 *)
  let stability =
    List.map
      (fun shards ->
        let p99s =
          List.filter_map
            (fun ((s, _), (r, _, _)) ->
              if s = shards then Some r.Cgcm_serve.Loadgen.lr_p99_ms else None)
            cells
        in
        (shards, spread ~floor:5.0 p99s))
      !serve_shard_counts
  in
  let within_bounds = List.for_all (fun (_, r) -> r <= 2.0) stability in
  let all_clean = List.for_all (fun (_, (_, _, clean)) -> clean) cells in
  let base_rps = rps_of 1 in
  let top_shards = List.fold_left max 1 !serve_shard_counts in
  let speedup = if base_rps > 0.0 then rps_of top_shards /. base_rps else 0.0 in
  (* the >= 2x gate needs both endpoints of the matrix and enough cores
     for the shards to actually run in parallel *)
  let applicable =
    (not degraded) && host_cores >= 4
    && List.mem 1 !serve_shard_counts
    && top_shards >= 2
  in
  let scaling_ok = (not applicable) || speedup >= 2.0 in
  let int_stat name stats =
    Cgcm_serve.Json.int_field ~default:0 name stats
  in
  let json : Cgcm_serve.Json.t =
    Obj
      ([
         ("schema", Cgcm_serve.Json.Str "cgcm-bench-9");
         ( "config",
           Obj
             [
               ("tenants", Cgcm_serve.Json.Int tenants);
               ("requests", Cgcm_serve.Json.Int requests);
               ("burst", Cgcm_serve.Json.Int burst);
               ("max_queue", Cgcm_serve.Json.Int max_queue);
               ( "shard_counts",
                 Cgcm_serve.Json.List
                   (List.map
                      (fun s -> Cgcm_serve.Json.Int s)
                      !serve_shard_counts) );
             ] );
         ("host_cores", Cgcm_serve.Json.Int host_cores);
       ]
      @ (if degraded then [ ("degraded", Cgcm_serve.Json.Bool true) ] else [])
      @ [
          ( "matrix",
            Cgcm_serve.Json.Obj
              (List.map
                 (fun ((shards, seed), (r, stats, clean)) ->
                   ( Printf.sprintf "shards%d_seed%d" shards seed,
                     Cgcm_serve.Json.Obj
                       [
                         ("shards", Cgcm_serve.Json.Int shards);
                         ("seed", Cgcm_serve.Json.Int seed);
                         ("rps", Cgcm_serve.Json.Float r.Cgcm_serve.Loadgen.lr_rps);
                         ( "p50_ms",
                           Cgcm_serve.Json.Float r.Cgcm_serve.Loadgen.lr_p50_ms );
                         ( "p99_ms",
                           Cgcm_serve.Json.Float r.Cgcm_serve.Loadgen.lr_p99_ms );
                         ("ok", Cgcm_serve.Json.Int r.Cgcm_serve.Loadgen.lr_ok);
                         ("shed", Cgcm_serve.Json.Int r.Cgcm_serve.Loadgen.lr_shed);
                         ("batches", Cgcm_serve.Json.Int (int_stat "batches" stats));
                         ( "batched_runs",
                           Cgcm_serve.Json.Int (int_stat "batched_runs" stats) );
                         ( "warm_coalesced",
                           Cgcm_serve.Json.Int (int_stat "warm_coalesced" stats) );
                         ("clean_shutdown", Cgcm_serve.Json.Bool clean);
                       ] ))
                 cells) );
          ( "stability",
            Cgcm_serve.Json.Obj
              (List.map
                 (fun (shards, r) ->
                   ( Printf.sprintf "p99_ratio_shards%d" shards,
                     Cgcm_serve.Json.Float r ))
                 stability
              @ [ ("within_bounds", Cgcm_serve.Json.Bool within_bounds) ]) );
          ( "scaling",
            Cgcm_serve.Json.Obj
              [
                ("rps_shards1", Cgcm_serve.Json.Float base_rps);
                ( Printf.sprintf "rps_shards%d" top_shards,
                  Cgcm_serve.Json.Float (rps_of top_shards) );
                ("speedup_rps", Cgcm_serve.Json.Float speedup);
                ("gate_applicable", Cgcm_serve.Json.Bool applicable);
              ] );
          ("clean_shutdowns", Cgcm_serve.Json.Bool all_clean);
          ("scaling_ok", Cgcm_serve.Json.Bool scaling_ok);
        ])
  in
  let path = "BENCH_9.json" in
  let oc = open_out path in
  output_string oc (Cgcm_serve.Json.print json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "%s@." (Cgcm_serve.Json.print json);
  Fmt.pr "wrote %s@." path;
  if not all_clean then begin
    Fmt.epr "serve shards bench: a daemon did not shut down cleanly@.";
    exit 1
  end;
  if not within_bounds then begin
    Fmt.epr "serve shards bench: cross-seed p99 instability (bound 2.0)@.";
    exit 1
  end;
  if not scaling_ok then begin
    Fmt.epr
      "serve shards bench: shards=%d delivered %.2fx the req/s of shards=1 \
       on a %d-core host (gate: >= 2.0x)@."
      top_shards speedup host_cores;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* mem-backend A/B: explicit copies vs paged migration -> BENCH_10.json *)

(* Runs the full suite's optimized configuration under both memory
   backends and emits per-program cycle counts, the explicit backend's
   transfer volumes, and the paged backend's page-fault volumes. Two
   gates: every program must be bit-identical across backends with a
   clean leak report (the backends may only move cost, never values),
   and at least one program must show explicit-copy CGCM beating paged
   migration by >= 2x — the measurable version of the paper's claim
   that managed explicit transfers out-run on-demand paging. *)
let membackend_json () =
  section "memory backends: explicit copies vs paged migration";
  let module J = Cgcm_serve.Json in
  let module MB = Cgcm_runtime.Mem_backend in
  let module Paged = Cgcm_runtime.Paged in
  let progs = Cgcm_progs.Registry.all in
  let rows =
    List.map
      (fun (p : Cgcm_progs.Registry.program) ->
        Fmt.epr "  running %s under both backends...@."
          p.Cgcm_progs.Registry.name;
        let run backend =
          snd
            (Pipeline.run ~backend Pipeline.Cgcm_optimized
               p.Cgcm_progs.Registry.source)
        in
        let ex = run MB.Explicit and pg = run MB.Paged in
        (p.Cgcm_progs.Registry.name, ex, pg))
      progs
  in
  let clean (r : Interp.result) =
    r.Interp.leaks.Runtime.resident_nonglobal = 0
    && r.Interp.leaks.Runtime.leaked_dev_blocks = 0
  in
  let identical =
    List.for_all
      (fun (_, ex, pg) ->
        ex.Interp.output = pg.Interp.output
        && ex.Interp.exit_code = pg.Interp.exit_code
        && clean ex && clean pg)
      rows
  in
  let ratio ex pg = pg.Interp.wall /. ex.Interp.wall in
  let explicit_2x =
    List.filter (fun (_, ex, pg) -> ratio ex pg >= 2.0) rows
    |> List.map (fun (n, _, _) -> n)
  in
  let json =
    J.Obj
      [
        ("schema", J.Str "cgcm-bench-10");
        ("programs", J.Int (List.length rows));
        ( "page_bytes",
          J.Int Cgcm_gpusim.Cost_model.default.Cost_model.page_bytes );
        ( "page_fault_cycles",
          J.Float Cgcm_gpusim.Cost_model.default.Cost_model.page_fault_cycles
        );
        ( "per_program",
          J.Obj
            (List.map
               (fun (name, ex, pg) ->
                 let ps = Option.get pg.Interp.page_stats in
                 ( name,
                   J.Obj
                     [
                       ("explicit_cycles", J.Float ex.Interp.wall);
                       ("paged_cycles", J.Float pg.Interp.wall);
                       ("paged_over_explicit", J.Float (ratio ex pg));
                       ( "explicit_transfer_bytes",
                         J.Int
                           (ex.Interp.dev_stats.Device.htod_bytes
                           + ex.Interp.dev_stats.Device.dtoh_bytes) );
                       ( "explicit_transfers",
                         J.Int
                           (ex.Interp.dev_stats.Device.htod_count
                           + ex.Interp.dev_stats.Device.dtoh_count) );
                       ( "page_faults",
                         J.Int (ps.Paged.faults_to_dev + ps.Paged.faults_to_host)
                       );
                       ( "migrated_bytes",
                         J.Int (ps.Paged.bytes_to_dev + ps.Paged.bytes_to_host)
                       );
                       ("touched_pages", J.Int ps.Paged.touched_pages);
                     ] ))
               rows) );
        ("gate_bit_identical", J.Bool identical);
        ( "explicit_wins_2x",
          J.List (List.map (fun n -> J.Str n) explicit_2x) );
        ("gate_explicit_wins_2x", J.Bool (explicit_2x <> []))
      ]
  in
  let path = "BENCH_10.json" in
  let oc = open_out path in
  output_string oc (J.print json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "%s@." (J.print json);
  Fmt.pr "wrote %s@." path;
  if not identical then begin
    Fmt.epr
      "membackend bench: backends disagree on output or leak report@.";
    exit 1
  end;
  if explicit_2x = [] then begin
    Fmt.epr
      "membackend bench: no program shows explicit-copy CGCM >= 2x over \
       paged migration@.";
    exit 1
  end

let all () =
  figure1 ();
  figure3 ();
  figure2 ();
  table1 ();
  figure4 ();
  table3 ();
  applicability ();
  volume ();
  breakdown ();
  check_outputs ();
  validate ();
  ablation ();
  sweep ();
  micro ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] | [] -> all ()
  | _ :: args ->
    let json = List.mem "--json" args in
    List.iter
      (fun a ->
        let with_pfx pfx k =
          let n = String.length pfx in
          if String.length a > n && String.sub a 0 n = pfx then
            k
              (String.split_on_char ',' (String.sub a n (String.length a - n))
              |> List.map int_of_string)
        in
        with_pfx "--seeds=" (fun v -> serve_seeds := v);
        with_pfx "--shards=" (fun v -> serve_shard_counts := v))
      args;
    List.iter
      (function
        | "--json" -> ()
        | a when String.length a > 8 && String.sub a 0 8 = "--seeds=" -> ()
        | a when String.length a > 9 && String.sub a 0 9 = "--shards=" -> ()
        | "micro" when json -> micro_json ()
        | "membackend" -> membackend_json ()
        | "serve" ->
          serve_json ();
          serve_shards_json ()
        | "figure4" -> figure4 ()
        | "table3" -> table3 ()
        | "table1" -> table1 ()
        | "figure2" -> figure2 ()
        | "figure1" -> figure1 ()
        | "figure3" -> figure3 ()
        | "applicability" -> applicability ()
        | "volume" -> volume ()
        | "breakdown" -> breakdown ()
        | "ablation" -> ablation ()
        | "sweep" -> sweep ()
        | "micro" -> micro ()
        | "check" -> check_outputs ()
        | "validate" -> validate ()
        | other -> Fmt.epr "unknown artifact %s@." other)
      args
