(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and runs Bechamel micro-benchmarks of
   the core primitives.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- figure4      -- one artifact
     dune exec bench/main.exe -- table3
     dune exec bench/main.exe -- table1
     dune exec bench/main.exe -- figure2
     dune exec bench/main.exe -- applicability
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- micro
*)

module E = Cgcm_core.Experiments
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Runtime = Cgcm_runtime.Runtime
module Avl = Cgcm_support.Avl_map.Int

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* The paper's artifacts                                               *)

let suite_results = ref None

let get_suite () =
  match !suite_results with
  | Some r -> r
  | None ->
    let r =
      E.run_suite ~progress:(fun name -> Fmt.epr "  running %s...@." name) ()
    in
    suite_results := Some r;
    r

let figure4 () =
  section "Figure 4: whole-program speedups (24 programs)";
  print_string (E.figure4 (get_suite ()))

let table3 () =
  section "Table 3: program characteristics";
  print_string (E.table3 (get_suite ()))

let table1 () =
  section "Table 1: communication-system applicability";
  print_string (E.table1 ())

let figure1 () =
  section "Figure 1: taxonomy of related work";
  print_string (E.figure1 ())

let figure3 () =
  section "Figure 3: system overview";
  print_string (E.figure3 ())

let figure2 () =
  section "Figure 2: execution schedules";
  print_string (E.figure2 ())

let applicability () =
  section "Section 6 applicability claim";
  print_string (E.applicability (get_suite ()))

let volume () =
  section "Communication volume (extension)";
  print_string (E.volume_table (get_suite ()))

let breakdown () =
  section "Time breakdown (extension)";
  print_string (E.breakdown_table (get_suite ()))

let ablation () =
  section "Ablation: optimization passes in isolation";
  print_string (E.ablation ())

let sweep () =
  section "Cost-model sensitivity sweep (extension)";
  print_string (E.latency_sweep ())

let validate () =
  section "Claim validation";
  let text, ok = Cgcm_core.Validate.report (get_suite ()) in
  print_string text;
  if not ok then exit 1

let check_outputs () =
  let bad = List.filter (fun r -> not r.E.outputs_match) (get_suite ()) in
  if bad = [] then
    Fmt.pr "@.All 24 programs produce identical output in every mode.@."
  else
    List.iter
      (fun r ->
        Fmt.pr "!! OUTPUT MISMATCH: %s@." r.E.prog.Cgcm_progs.Registry.name)
      bad

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)

let bench_avl =
  let t = ref Avl.empty in
  for i = 0 to 255 do
    t := Avl.add (i * 64) i !t
  done;
  let t = !t in
  Bechamel.Test.make ~name:"avl-greatest-leq-256-units"
    (Bechamel.Staged.stage (fun () -> Avl.greatest_leq 8191 t))

let mk_runtime () =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000_00
  in
  let dev = Device.create Cost_model.default in
  let rt = Runtime.create ~host ~dev in
  let base = Memspace.alloc host 4096 in
  Runtime.register_heap rt ~base ~size:4096;
  (rt, base)

let bench_map_release =
  let rt, base = mk_runtime () in
  Bechamel.Test.make ~name:"runtime-map-release-4KiB"
    (Bechamel.Staged.stage (fun () ->
         let d = Runtime.map rt base in
         Runtime.release rt base;
         d))

let bench_map_resident =
  let rt, base = mk_runtime () in
  ignore (Runtime.map rt base);
  Bechamel.Test.make ~name:"runtime-map-release-resident"
    (Bechamel.Staged.stage (fun () ->
         let d = Runtime.map rt base in
         Runtime.release rt base;
         d))

let bench_memspace =
  let m = Memspace.create ~name:"bench" ~range_lo:0x1000 ~range_hi:0x100_0000 in
  let a = Memspace.alloc m 8192 in
  Bechamel.Test.make ~name:"memspace-load-f64"
    (Bechamel.Staged.stage (fun () -> Memspace.load_f64 m (a + 4096)))

let bench_compile =
  let src = Cgcm_progs.Polybench.gemm ~n:8 () in
  Bechamel.Test.make ~name:"pipeline-compile-gemm"
    (Bechamel.Staged.stage (fun () ->
         Pipeline.compile ~level:Pipeline.Optimized src))

let bench_interp =
  let src = Cgcm_progs.Polybench.gemm ~n:6 () in
  lazy
    (let c = Pipeline.compile ~level:Pipeline.Optimized src in
     Bechamel.Test.make ~name:"interp-run-gemm-n6"
       (Bechamel.Staged.stage (fun () -> Interp.run c.Pipeline.modul)))

let micro () =
  section "Bechamel micro-benchmarks (ns per operation)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"cgcm"
      [
        bench_avl;
        bench_memspace;
        bench_map_release;
        bench_map_resident;
        bench_compile;
        Lazy.force bench_interp;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | _ -> "n/a"
        in
        [ name; est ] :: acc)
      results []
    |> List.sort compare
  in
  print_string
    (Cgcm_report.Table.render
       ~aligns:[ Cgcm_report.Table.Left; Cgcm_report.Table.Right ]
       ~header:[ "benchmark"; "ns/op" ] rows)

let all () =
  figure1 ();
  figure3 ();
  figure2 ();
  table1 ();
  figure4 ();
  table3 ();
  applicability ();
  volume ();
  breakdown ();
  check_outputs ();
  validate ();
  ablation ();
  sweep ();
  micro ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] | [] -> all ()
  | _ :: args ->
    List.iter
      (function
        | "figure4" -> figure4 ()
        | "table3" -> table3 ()
        | "table1" -> table1 ()
        | "figure2" -> figure2 ()
        | "figure1" -> figure1 ()
        | "figure3" -> figure3 ()
        | "applicability" -> applicability ()
        | "volume" -> volume ()
        | "breakdown" -> breakdown ()
        | "ablation" -> ablation ()
        | "sweep" -> sweep ()
        | "micro" -> micro ()
        | "check" -> check_outputs ()
        | "validate" -> validate ()
        | other -> Fmt.epr "unknown artifact %s@." other)
      args
