(* CGCM serves manual and automatic parallelizations with the same
   run-time and the same optimizer (the paper's Figure 1 taxonomy: the
   communication axis is independent of the parallelization axis).

     dune exec examples/manual_vs_auto.exe

   The same LU factorization is written twice:
   - auto:   plain loops; the simple DOALL test proves the row-scaling
             loop independent but (conservatively) keeps the trailing
             update sequential;
   - manual: 'parallel' annotations put both loops on the GPU, as an
             expert would — and CGCM manages communication identically.
*)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Doall = Cgcm_frontend.Doall

let lu annotate =
  let p = if annotate then "parallel " else "" in
  Printf.sprintf
    {|global float A[48][48];

void init() {
  for (int i = 0; i < 48; i++) {
    for (int j = 0; j < 48; j++) {
      float v = ((i * j) %% 11 + 2) * 0.07;
      if (i == j) { v = v + 48.0; }
      A[i][j] = v;
    }
  }
}

void scale_col(int k) {
  %sfor (int i = k + 1; i < 48; i++) {
    A[i][k] = A[i][k] / A[k][k];
  }
}

void update(int k) {
  %sfor (int i = k + 1; i < 48; i++) {
    %sfor (int j = k + 1; j < 48; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}

int main() {
  init();
  for (int k = 0; k < 47; k++) {
    scale_col(k);
    update(k);
  }
  float sum = 0.0;
  for (int i = 0; i < 48; i++) {
    for (int j = 0; j < 48; j++) {
      sum = sum + A[i][j];
    }
  }
  print(sum);
  return 0;
}
|}
    p p p

let describe label src =
  let compiled = Pipeline.compile ~level:Pipeline.Optimized src in
  let kernels = compiled.Pipeline.doall.Doall.kernels in
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  assert (seq.Interp.output = opt.Interp.output);
  Fmt.pr "%-28s: %d kernels, %8.0f cycles, %5.2fx over sequential@." label
    (List.length kernels) opt.Interp.wall
    (seq.Interp.wall /. opt.Interp.wall);
  List.iter
    (fun (k : Doall.kernel_info) ->
      Fmt.pr "    %-18s (%s parallelization)@." k.Doall.k_name
        (if k.Doall.k_manual then "manual" else "automatic"))
    kernels

let () =
  Fmt.pr "== LU factorization: automatic vs annotated parallelization ==@.@.";
  describe "automatic DOALL only" (lu false);
  Fmt.pr "@.";
  describe "with 'parallel' annotations" (lu true);
  Fmt.pr
    "@.Both versions go through the same communication management and@.\
     map promotion; CGCM never needed to know who parallelized the loop.@."
