(* Quickstart: compile a CGC program through the full CGCM pipeline and
   compare the paper's execution configurations.

     dune exec examples/quickstart.exe

   The program is a SAXPY with a time loop — the smallest program where
   communication optimization matters: unoptimized CGCM transfers X and Y
   on every iteration (cyclic), optimized CGCM hoists the transfers out
   (acyclic). *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp

let source =
  {|// saxpy with a time loop
global float X[4096];
global float Y[4096];

void init() {
  for (int i = 0; i < 4096; i++) {
    X[i] = i * 0.5;
    Y[i] = 4096 - i;
  }
}

void saxpy(float a) {
  for (int t = 0; t < 50; t++) {
    for (int i = 0; i < 4096; i++) {
      Y[i] = a * X[i] + Y[i];
    }
  }
}

int main() {
  init();
  saxpy(2.0);
  float sum = 0.0;
  for (int i = 0; i < 4096; i++) {
    sum = sum + Y[i];
  }
  print(sum);
  return 0;
}
|}

let () =
  Fmt.pr "== CGCM quickstart: saxpy ==@.@.";
  (* 1. Compile and inspect: how many kernels did the DOALL parallelizer
        create? *)
  let compiled = Pipeline.compile ~level:Pipeline.Optimized source in
  Fmt.pr "DOALL parallelizer created %d kernels@."
    (List.length compiled.Pipeline.doall.Cgcm_frontend.Doall.kernels);
  (* 2. Run the paper's execution configurations. *)
  let _, seq = Pipeline.run Pipeline.Sequential source in
  Fmt.pr "@.sequential output: %s" seq.Interp.output;
  Fmt.pr "%-22s %14s %9s %8s %8s@." "configuration" "cycles" "speedup"
    "HtoD" "DtoH";
  let show name (r : Interp.result) =
    assert (r.Interp.output = seq.Interp.output);
    Fmt.pr "%-22s %14.0f %8.2fx %8d %8d@." name r.Interp.wall
      (seq.Interp.wall /. r.Interp.wall)
      r.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
      r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count
  in
  show "sequential (baseline)" seq;
  List.iter
    (fun (name, mode) ->
      let _, r = Pipeline.run mode source in
      show name r)
    [
      ("inspector-executor", Pipeline.Inspector_executor_exec);
      ("cgcm unoptimized", Pipeline.Cgcm_unoptimized);
      ("cgcm optimized", Pipeline.Cgcm_optimized);
    ];
  Fmt.pr
    "@.Unoptimized CGCM transfers X and Y around every launch (cyclic);@.\
     map promotion hoists the maps out of the time loop (acyclic), so the@.\
     transfer counts stop depending on the iteration count.@."
