(* The paper's running example (Listings 1-4): an array of strings — a
   doubly indirect data structure — processed by a GPU kernel.

     dune exec examples/strings.exe

   Listing 1 is the manual version: a page of error-prone explicit
   allocation and copying through the driver API. Listing 2 is what the
   programmer writes under CGCM: the launch takes the host pointer, and
   the compiler inserts mapArray / unmapArray / releaseArray (Listing 3)
   which map promotion hoists out of the launch loop (Listing 4). Both
   versions run here, produce identical output, and the line counts make
   the paper's point about programmer effort. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Ir = Cgcm_ir.Ir
module Printer = Cgcm_ir.Printer

(* ------------------------------------------------------------------ *)
(* Listing 1: manual explicit CPU-GPU memory management. Every pointer
   the kernel touches is allocated, copied and freed by hand — buffer
   management and pointer manipulation, the classic sources of bugs. *)

let listing1 =
  {|global char s0[] = "What so proudly we hailed";
global char s1[] = "at the twilight's last gleaming";
global char s2[] = "whose broad stripes and bright stars";
global char s3[] = "through the perilous fight";
global char* h_h_array[4] = {s0, s1, s2, s3};
global int lengths[4];

kernel void kernel_fn(int tid, int i, char** d_array, int* d_lengths) {
  char* s = d_array[i];
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  int chunk = (n + 7) / 8;
  for (int c = tid * chunk; c < (tid + 1) * chunk && c < n; c++) {
    if (s[c] >= 97 && s[c] <= 122) {
      s[c] = s[c] - 32;
    }
  }
  if (tid == 0) { d_lengths[i] = n; }
}

int main() {
  // copy each string to the GPU, building the device pointer array
  char* h_d_array[4];
  for (int i = 0; i < 4; i++) {
    int size = strlen(h_h_array[i]) + 1;
    h_d_array[i] = gpu_malloc(size);
    gpu_memcpy_h2d(h_d_array[i], h_h_array[i], size);
  }
  // copy the pointer array itself
  char** d_d_array = (char**) gpu_malloc(4 * sizeof(char*));
  gpu_memcpy_h2d((char*) d_d_array, (char*) h_d_array, 4 * sizeof(char*));
  int* d_lengths = (int*) gpu_malloc(4 * sizeof(int));
  for (int i = 0; i < 4; i++) {
    launch kernel_fn<8>(i, d_d_array, d_lengths);
  }
  // copy the strings back, and free the GPU copies
  for (int i = 0; i < 4; i++) {
    int size = strlen(h_h_array[i]) + 1;
    gpu_memcpy_d2h(h_h_array[i], h_d_array[i], size);
    gpu_free(h_d_array[i]);
  }
  gpu_memcpy_d2h((char*) lengths, (char*) d_lengths, 4 * sizeof(int));
  gpu_free((char*) d_d_array);
  gpu_free((char*) d_lengths);
  for (int i = 0; i < 4; i++) {
    prints(h_h_array[i]);
    print(lengths[i]);
  }
  return 0;
}
|}

(* ------------------------------------------------------------------ *)
(* Listing 2: the same program under CGCM — implicit communication. *)

let listing2 =
  {|global char s0[] = "What so proudly we hailed";
global char s1[] = "at the twilight's last gleaming";
global char s2[] = "whose broad stripes and bright stars";
global char s3[] = "through the perilous fight";
global char* h_h_array[4] = {s0, s1, s2, s3};
global int lengths[4];

kernel void kernel_fn(int tid, int i, char** d_array) {
  char* s = d_array[i];
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  int chunk = (n + 7) / 8;
  for (int c = tid * chunk; c < (tid + 1) * chunk && c < n; c++) {
    if (s[c] >= 97 && s[c] <= 122) {
      s[c] = s[c] - 32;
    }
  }
  if (tid == 0) { lengths[i] = n; }
}

int main() {
  for (int i = 0; i < 4; i++) {
    launch kernel_fn<8>(i, h_h_array);
  }
  for (int i = 0; i < 4; i++) {
    prints(h_h_array[i]);
    print(lengths[i]);
  }
  return 0;
}
|}

let body_lines src =
  (* count main's communication-relevant lines, roughly *)
  List.length
    (List.filter
       (fun l ->
         let l = String.trim l in
         l <> "" && l <> "}" && not (String.length l > 1 && l.[0] = '/'))
       (String.split_on_char '\n' src))

let dump_main title modul =
  Fmt.pr "---- %s ----@." title;
  Fmt.pr "%s@." (Printer.func_to_string (Ir.find_func_exn modul "main"))

let () =
  (* Listing 1: manual management runs at the Unmanaged level with the
     automatic parallelizer off — CGCM is entirely out of the loop, the
     programmer did everything (parallelization and communication). *)
  let c1 =
    Pipeline.compile ~parallel:Cgcm_frontend.Doall.Off
      ~level:Pipeline.Unmanaged listing1
  in
  let r1 = Interp.run c1.Pipeline.modul in
  (* Listing 2: automatic management + optimization. *)
  let c2 = Pipeline.compile ~level:Pipeline.Managed listing2 in
  let _ = c2 in
  let _, r2 = Pipeline.run Pipeline.Cgcm_optimized listing2 in
  assert (r1.Interp.output = r2.Interp.output);
  Fmt.pr "== output (both versions identical) ==@.%s@." r1.Interp.output;
  Fmt.pr "Listing 1 (manual driver calls) : %3d source lines, %2d transfers@."
    (body_lines listing1)
    (r1.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
    + r1.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count);
  Fmt.pr "Listing 2 (CGCM, optimized)     : %3d source lines, %2d transfers@.@."
    (body_lines listing2)
    (r2.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
    + r2.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count);
  (* Listing 3: the IR after the communication-management pass *)
  let managed = Pipeline.compile ~level:Pipeline.Managed listing2 in
  dump_main "Listing 3: after communication management (mapArray inserted)"
    managed.Pipeline.modul;
  (* Listing 4: after map promotion *)
  let optimized = Pipeline.compile ~level:Pipeline.Optimized listing2 in
  dump_main "Listing 4: after map promotion (acyclic)" optimized.Pipeline.modul;
  Fmt.pr
    "mapArray calls at run time: %d; every line of Listing 1's buffer\n\
     management is gone, and the communication pattern is acyclic.@."
    r2.Interp.rt_stats.Cgcm_runtime.Runtime.map_array_calls
