examples/quickstart.mli:
