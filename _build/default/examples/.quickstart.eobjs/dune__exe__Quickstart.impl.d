examples/quickstart.ml: Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Fmt List
