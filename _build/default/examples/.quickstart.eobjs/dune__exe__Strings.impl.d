examples/strings.ml: Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_ir Cgcm_runtime Fmt List String
