examples/manual_vs_auto.ml: Cgcm_core Cgcm_frontend Cgcm_interp Fmt List Printf
