examples/manual_vs_auto.mli:
