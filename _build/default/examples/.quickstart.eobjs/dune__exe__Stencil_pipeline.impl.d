examples/stencil_pipeline.ml: Cgcm_core Cgcm_gpusim Cgcm_interp Cgcm_runtime Fmt String
