examples/strings.mli:
