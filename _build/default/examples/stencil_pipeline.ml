(* A heat-diffusion stencil written against heap arrays reached through
   global pointers — the data shapes Rodinia programs use. Kernels then
   see *double* pointers, so this example exercises the run-time's
   mapArray path end to end, and renders the Figure 2-style execution
   schedules for the cyclic and acyclic regimes.

     dune exec examples/stencil_pipeline.exe
*)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Trace = Cgcm_gpusim.Trace

let source =
  {|// 1-D heat diffusion over heap arrays
global float* temp;
global float* next;

void init(int n) {
  parallel for (int i = 0; i < n; i++) {
    temp[i] = 20.0 + (i % 32) * 0.5;
    next[i] = 0.0;
  }
}

void step(int n) {
  parallel for (int i = 1; i < n - 1; i++) {
    next[i] = temp[i] + 0.2 * (temp[i - 1] - 2.0 * temp[i] + temp[i + 1]);
  }
}

void commit(int n) {
  parallel for (int i = 1; i < n - 1; i++) {
    temp[i] = next[i];
  }
}

int main() {
  int n = 2048;
  temp = (float*) malloc(n * sizeof(float));
  next = (float*) malloc(n * sizeof(float));
  init(n);
  for (int t = 0; t < 12; t++) {
    step(n);
    commit(n);
  }
  float sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum = sum + temp[i];
  }
  print(sum);
  return 0;
}
|}

let () =
  Fmt.pr "== stencil over heap arrays (mapArray path) ==@.@.";
  let _, seq = Pipeline.run Pipeline.Sequential source in
  let _, unopt = Pipeline.run ~trace:true Pipeline.Cgcm_unoptimized source in
  let _, opt = Pipeline.run ~trace:true Pipeline.Cgcm_optimized source in
  assert (unopt.Interp.output = seq.Interp.output);
  assert (opt.Interp.output = seq.Interp.output);
  Fmt.pr "output (all modes agree): %s@." (String.trim seq.Interp.output);
  Fmt.pr "sequential   : %10.0f cycles@." seq.Interp.wall;
  Fmt.pr "cgcm unopt   : %10.0f cycles (%.2fx) - %d HtoD, %d DtoH@."
    unopt.Interp.wall
    (seq.Interp.wall /. unopt.Interp.wall)
    unopt.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
    unopt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count;
  Fmt.pr "cgcm opt     : %10.0f cycles (%.2fx) - %d HtoD, %d DtoH@.@."
    opt.Interp.wall
    (seq.Interp.wall /. opt.Interp.wall)
    opt.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
    opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count;
  Fmt.pr "cyclic schedule (unoptimized):@.%s@." (Trace.render unopt.Interp.trace);
  Fmt.pr "acyclic schedule (optimized):@.%s@." (Trace.render opt.Interp.trace);
  Fmt.pr "mapArray calls: unopt %d vs opt %d (promotion holds the reference)@."
    unopt.Interp.rt_stats.Cgcm_runtime.Runtime.map_array_calls
    opt.Interp.rt_stats.Cgcm_runtime.Runtime.map_array_calls
