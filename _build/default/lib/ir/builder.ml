(* Imperative function builder used by the frontend lowering and by tests
   that construct IR by hand. Instructions accumulate per block (in
   reverse); [finish] writes them into the function. The insertion point
   may move freely between blocks. *)

open Ir

type t = {
  func : func;
  mutable cur : int;  (* current block index *)
  mutable rev : instr list array;  (* per-block instructions, reversed *)
}

let create ~name ~nargs ~kind =
  let entry = { instrs = []; term = Ret None } in
  let func =
    { fname = name; nargs; nregs = nargs; blocks = [| entry |]; fkind = kind }
  in
  { func; cur = 0; rev = [| [] |] }

let func t = t.func

let fresh t = fresh_reg t.func

let new_block t =
  let b = add_block t.func { instrs = []; term = Ret None } in
  t.rev <- Array.append t.rev [| [] |];
  b

let position_at t b = t.cur <- b

let current_block t = t.cur

let insert t i = t.rev.(t.cur) <- i :: t.rev.(t.cur)

let binop t op a b =
  let d = fresh t in
  insert t (Binop (d, op, a, b));
  Reg d

let unop t op a =
  let d = fresh t in
  insert t (Unop (d, op, a));
  Reg d

let load t ty a =
  let d = fresh t in
  insert t (Load (d, ty, a));
  Reg d

let store t ty a v = insert t (Store (ty, a, v))

let alloca t ?(name = "tmp") size =
  let d = fresh t in
  insert t (Alloca (d, size, { aname = name; aregistered = false }));
  Reg d

let call t name args =
  let d = fresh t in
  insert t (Call (Some d, name, args));
  Reg d

let call_void t name args = insert t (Call (None, name, args))

let launch t ~kernel ~trip ~args = insert t (Launch { kernel; trip; args })

let set_term t tm = t.func.blocks.(t.cur).term <- tm

let br t b = set_term t (Br b)

let cbr t v b1 b2 = set_term t (Cbr (v, b1, b2))

let ret t v = set_term t (Ret v)

let finish t =
  Array.iteri (fun i b -> b.instrs <- List.rev t.rev.(i)) t.func.blocks;
  t.func
