(** Parser for the textual IR produced by {!Printer}: modules round-trip
    through their printed form ([Printer.modul_to_string] then {!parse}
    reproduces the module up to printing). Lets the CLI execute .ir files
    and the tests pin serialization. *)

exception Bad_ir of string

val parse : string -> Ir.modul
(** Syntactic parse; raises {!Bad_ir} on malformed text. *)

val parse_verified : string -> Ir.modul
(** {!parse} followed by {!Verifier.verify_modul}. *)
