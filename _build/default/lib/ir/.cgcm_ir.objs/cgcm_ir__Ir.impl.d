lib/ir/ir.ml: Array Int64 List String
