lib/ir/printer.ml: Array Fmt Int64 Ir List Printf String
