lib/ir/ir.mli:
