lib/ir/reader.ml: Array Filename Fmt Fun Int64 Ir List Scanf String Verifier
