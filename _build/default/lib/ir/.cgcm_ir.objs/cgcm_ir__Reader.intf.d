lib/ir/reader.mli: Ir
