lib/ir/dominance.ml: Array Cfg Ir List
