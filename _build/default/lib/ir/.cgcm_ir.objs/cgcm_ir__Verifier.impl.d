lib/ir/verifier.ml: Array Cfg Dominance Fmt Hashtbl Ir List
