(* Human-readable IR dump, used by the CLI, golden tests, and debugging. *)

open Ir

let string_of_ty = function I8 -> "i8" | I64 -> "i64" | F64 -> "f64"

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt"
  | Fge -> "fge"

let string_of_unop = function
  | Neg -> "neg"
  | Not -> "not"
  | Fneg -> "fneg"
  | Int_to_float -> "itof"
  | Float_to_int -> "ftoi"

let pp_value ppf = function
  | Reg r -> Fmt.pf ppf "%%r%d" r
  | Imm_int i -> Fmt.pf ppf "%Ld" i
  | Imm_float f -> Fmt.pf ppf "%h" f
  | Global g -> Fmt.pf ppf "@%s" g

let pp_values = Fmt.list ~sep:(Fmt.any ", ") pp_value

let pp_instr ppf = function
  | Binop (d, op, a, b) ->
    Fmt.pf ppf "%%r%d = %s %a, %a" d (string_of_binop op) pp_value a pp_value b
  | Unop (d, op, a) ->
    Fmt.pf ppf "%%r%d = %s %a" d (string_of_unop op) pp_value a
  | Load (d, ty, a) ->
    Fmt.pf ppf "%%r%d = load.%s %a" d (string_of_ty ty) pp_value a
  | Store (ty, a, v) ->
    Fmt.pf ppf "store.%s %a, %a" (string_of_ty ty) pp_value a pp_value v
  | Alloca (d, size, info) ->
    Fmt.pf ppf "%%r%d = alloca%s %a  ; %s" d
      (if info.aregistered then ".reg" else "")
      pp_value size info.aname
  | Call (Some d, name, args) ->
    Fmt.pf ppf "%%r%d = call %s(%a)" d name pp_values args
  | Call (None, name, args) -> Fmt.pf ppf "call %s(%a)" name pp_values args
  | Launch { kernel; trip; args } ->
    Fmt.pf ppf "launch %s<%a>(%a)" kernel pp_value trip pp_values args

let pp_term ppf = function
  | Br b -> Fmt.pf ppf "br b%d" b
  | Cbr (v, b1, b2) -> Fmt.pf ppf "cbr %a, b%d, b%d" pp_value v b1 b2
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_value v
  | Ret None -> Fmt.pf ppf "ret"

let pp_func ppf (f : func) =
  let kind = match f.fkind with Cpu -> "func" | Kernel -> "kernel" in
  Fmt.pf ppf "%s %s(%d args, %d regs) {@." kind f.fname f.nargs f.nregs;
  Array.iteri
    (fun bi block ->
      Fmt.pf ppf "b%d:@." bi;
      List.iter (fun i -> Fmt.pf ppf "  %a@." pp_instr i) block.instrs;
      Fmt.pf ppf "  %a@." pp_term block.term)
    f.blocks;
  Fmt.pf ppf "}@."

let pp_global ppf (g : global) =
  let init =
    match g.ginit with
    | Zeroed -> "zeroed"
    | I64s a ->
      Fmt.str "i64{%s}"
        (String.concat ", " (Array.to_list (Array.map Int64.to_string a)))
    | F64s a ->
      Fmt.str "f64{%s}"
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%h") a)))
    | Str s -> Fmt.str "%S" s
    | Ptrs a ->
      Fmt.str "ptrs{%s}"
        (String.concat ", "
           (Array.to_list (Array.map (fun n -> if n = "" then "null" else "@" ^ n) a)))
  in
  Fmt.pf ppf "global %s%s : %d bytes = %s@." g.gname
    (if g.gread_only then " (ro)" else "")
    g.gsize init

let pp_modul ppf (m : modul) =
  List.iter (pp_global ppf) m.globals;
  List.iter (fun f -> Fmt.pf ppf "@.%a" pp_func f) m.funcs

let func_to_string f = Fmt.str "%a" pp_func f

let modul_to_string m = Fmt.str "%a" pp_modul m
