(* Control-flow-graph utilities over [Ir.func]. *)

let succs (f : Ir.func) b = Ir.succs_of_term f.blocks.(b).term

let preds (f : Ir.func) =
  let n = Array.length f.blocks in
  let p = Array.make n [] in
  for b = 0 to n - 1 do
    List.iter (fun s -> p.(s) <- b :: p.(s)) (succs f b)
  done;
  p

(* Reverse postorder from the entry; unreachable blocks are excluded. *)
let reverse_postorder (f : Ir.func) =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (succs f b);
      order := b :: !order
    end
  in
  go 0;
  !order

let reachable (f : Ir.func) =
  let n = Array.length f.blocks in
  let r = Array.make n false in
  List.iter (fun b -> r.(b) <- true) (reverse_postorder f);
  r
