(** Structural well-formedness checks for IR modules, run after the
    frontend and after every transformation — a pass producing ill-formed
    IR is a compiler bug.

    Checks: branch targets in range; registers single-assignment and in
    range; every use dominated by its definition (with intra-block
    ordering); referenced globals exist; launches name kernels; kernels
    are not called directly and do not launch; global initialisers fit
    their declared sizes. *)

exception Ill_formed of string

val verify_func : Ir.modul -> Ir.func -> unit
val verify_modul : Ir.modul -> unit
