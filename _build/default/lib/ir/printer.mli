(** Human-readable IR dumps, used by the CLI ([cgcm ir]), examples, and
    golden tests. *)

val string_of_ty : Ir.ty -> string
val string_of_binop : Ir.binop -> string
val string_of_unop : Ir.unop -> string

val pp_value : Format.formatter -> Ir.value -> unit
val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_term : Format.formatter -> Ir.terminator -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_global : Format.formatter -> Ir.global -> unit
val pp_modul : Format.formatter -> Ir.modul -> unit

val func_to_string : Ir.func -> string
val modul_to_string : Ir.modul -> string
