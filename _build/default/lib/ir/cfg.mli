(** Control-flow-graph utilities over {!Ir.func}. *)

val succs : Ir.func -> int -> int list
val preds : Ir.func -> int list array

val reverse_postorder : Ir.func -> int list
(** From the entry; unreachable blocks are excluded. *)

val reachable : Ir.func -> bool array
