(** Imperative function builder used by the frontend lowering and by
    tests constructing IR by hand. Instructions accumulate per block; the
    insertion point moves freely between blocks; {!finish} writes the
    accumulated lists into the function. *)

type t

val create : name:string -> nargs:int -> kind:Ir.fkind -> t
(** A function with one (entry) block, positioned there. *)

val func : t -> Ir.func
val fresh : t -> int
val new_block : t -> int
val position_at : t -> int -> unit
val current_block : t -> int
val insert : t -> Ir.instr -> unit

(** Convenience wrappers allocating the destination register: *)

val binop : t -> Ir.binop -> Ir.value -> Ir.value -> Ir.value
val unop : t -> Ir.unop -> Ir.value -> Ir.value
val load : t -> Ir.ty -> Ir.value -> Ir.value
val store : t -> Ir.ty -> Ir.value -> Ir.value -> unit
val alloca : t -> ?name:string -> Ir.value -> Ir.value
val call : t -> string -> Ir.value list -> Ir.value
val call_void : t -> string -> Ir.value list -> unit
val launch : t -> kernel:string -> trip:Ir.value -> args:Ir.value list -> unit

val set_term : t -> Ir.terminator -> unit
val br : t -> int -> unit
val cbr : t -> Ir.value -> int -> int -> unit
val ret : t -> Ir.value option -> unit

val finish : t -> Ir.func
