(* Parser for the textual IR produced by {!Printer}: modules round-trip
   through their printed form (Printer.modul_to_string >> Reader.parse ==
   identity up to printing). Used for .ir files in the CLI and by the
   serialization property tests. *)

open Ir

exception Bad_ir of string

let fail fmt = Fmt.kstr (fun s -> raise (Bad_ir s)) fmt

(* ------------------------------------------------------------------ *)
(* Line-level scanning helpers                                         *)

let strip s = String.trim s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.sub s (String.length prefix)
    (String.length s - String.length prefix)

(* Split "a, b, c" at top level (no nesting in our syntax). *)
let split_commas s =
  if strip s = "" then []
  else List.map strip (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let parse_value (s : string) : value =
  let s = strip s in
  if s = "" then fail "empty value"
  else if s.[0] = '%' then begin
    if not (starts_with ~prefix:"%r" s) then fail "bad register %s" s;
    Reg (int_of_string (after ~prefix:"%r" s))
  end
  else if s.[0] = '@' then Global (after ~prefix:"@" s)
  else if String.contains s 'x' || String.contains s '.'
          || String.contains s 'n' (* nan, inf *)
          || String.contains s 'p' then
    Imm_float (float_of_string s)
  else
    match Int64.of_string_opt s with
    | Some v -> Imm_int v
    | None -> Imm_float (float_of_string s)

(* "name(a, b)" -> name, [a; b] *)
let parse_call_syntax (s : string) : string * string list =
  match String.index_opt s '(' with
  | None -> fail "expected '(' in %s" s
  | Some i ->
    let name = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let close = String.rindex rest ')' in
    (name, split_commas (String.sub rest 0 close))

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)

let binop_of_string s =
  match s with
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl
  | "shr" -> Some Shr | "fadd" -> Some Fadd | "fsub" -> Some Fsub
  | "fmul" -> Some Fmul | "fdiv" -> Some Fdiv | "eq" -> Some Eq
  | "ne" -> Some Ne | "lt" -> Some Lt | "le" -> Some Le | "gt" -> Some Gt
  | "ge" -> Some Ge | "feq" -> Some Feq | "fne" -> Some Fne
  | "flt" -> Some Flt | "fle" -> Some Fle | "fgt" -> Some Fgt
  | "fge" -> Some Fge
  | _ -> None

let unop_of_string s =
  match s with
  | "neg" -> Some Neg | "not" -> Some Not | "fneg" -> Some Fneg
  | "itof" -> Some Int_to_float | "ftoi" -> Some Float_to_int
  | _ -> None

let ty_of_string s =
  match s with
  | "i8" -> I8
  | "i64" -> I64
  | "f64" -> F64
  | _ -> fail "unknown access type %s" s

(* The right-hand side of "%rD = ...". *)
let parse_def d (rhs : string) : instr =
  let rhs = strip rhs in
  match String.index_opt rhs ' ' with
  | None -> fail "malformed definition: %s" rhs
  | Some sp -> (
    let head = String.sub rhs 0 sp in
    let rest = strip (String.sub rhs sp (String.length rhs - sp)) in
    match binop_of_string head with
    | Some op -> (
      match split_commas rest with
      | [ a; b ] -> Binop (d, op, parse_value a, parse_value b)
      | _ -> fail "binop arity in %s" rhs)
    | None -> (
      match unop_of_string head with
      | Some op -> Unop (d, op, parse_value rest)
      | None ->
        if starts_with ~prefix:"load." head then
          Load (d, ty_of_string (after ~prefix:"load." head), parse_value rest)
        else if head = "alloca" || head = "alloca.reg" then begin
          (* "SIZE  ; name" *)
          let size, name =
            match String.index_opt rest ';' with
            | Some i ->
              ( strip (String.sub rest 0 i),
                strip (String.sub rest (i + 1) (String.length rest - i - 1)) )
            | None -> (rest, "tmp")
          in
          Alloca
            ( d,
              parse_value size,
              { aname = name; aregistered = head = "alloca.reg" } )
        end
        else if head = "call" then begin
          let name, args = parse_call_syntax rest in
          Call (Some d, name, List.map parse_value args)
        end
        else fail "unknown instruction %s" rhs))

let parse_instr (line : string) : instr =
  let line = strip line in
  if starts_with ~prefix:"%r" line then begin
    match String.index_opt line '=' with
    | None -> fail "expected '=' in %s" line
    | Some i ->
      let d =
        int_of_string (after ~prefix:"%r" (strip (String.sub line 0 i)))
      in
      parse_def d (String.sub line (i + 1) (String.length line - i - 1))
  end
  else if starts_with ~prefix:"store." line then begin
    let rest = after ~prefix:"store." line in
    match String.index_opt rest ' ' with
    | None -> fail "malformed store %s" line
    | Some sp -> (
      let ty = ty_of_string (String.sub rest 0 sp) in
      match split_commas (String.sub rest sp (String.length rest - sp)) with
      | [ a; v ] -> Store (ty, parse_value a, parse_value v)
      | _ -> fail "store arity in %s" line)
  end
  else if starts_with ~prefix:"call " line then begin
    let name, args = parse_call_syntax (after ~prefix:"call " line) in
    Call (None, name, List.map parse_value args)
  end
  else if starts_with ~prefix:"launch " line then begin
    (* launch k<trip>(args) *)
    let rest = after ~prefix:"launch " line in
    let lt = String.index rest '<' in
    let gt = String.index rest '>' in
    let kernel = strip (String.sub rest 0 lt) in
    let trip = parse_value (String.sub rest (lt + 1) (gt - lt - 1)) in
    let _, args = parse_call_syntax (String.sub rest gt (String.length rest - gt)) in
    Launch { kernel; trip; args = List.map parse_value args }
  end
  else fail "unknown instruction: %s" line

let parse_term (line : string) : terminator =
  let line = strip line in
  if starts_with ~prefix:"br b" line then
    Br (int_of_string (after ~prefix:"br b" line))
  else if starts_with ~prefix:"cbr " line then begin
    match split_commas (after ~prefix:"cbr " line) with
    | [ v; b1; b2 ] when starts_with ~prefix:"b" b1 && starts_with ~prefix:"b" b2 ->
      Cbr
        ( parse_value v,
          int_of_string (after ~prefix:"b" b1),
          int_of_string (after ~prefix:"b" b2) )
    | _ -> fail "malformed cbr: %s" line
  end
  else if line = "ret" then Ret None
  else if starts_with ~prefix:"ret " line then
    Ret (Some (parse_value (after ~prefix:"ret " line)))
  else fail "unknown terminator: %s" line

let is_term line =
  let line = strip line in
  starts_with ~prefix:"br " line
  || starts_with ~prefix:"cbr " line
  || line = "ret"
  || starts_with ~prefix:"ret " line

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)

let parse_global (line : string) : global =
  (* global NAME (ro)? : SIZE bytes = INIT *)
  let rest = after ~prefix:"global " line in
  let colon = String.index rest ':' in
  let head = strip (String.sub rest 0 colon) in
  let gname, gread_only =
    if starts_with ~prefix:"" head && Filename.check_suffix head "(ro)" then
      (strip (Filename.chop_suffix head "(ro)"), true)
    else (head, false)
  in
  let tail = strip (String.sub rest (colon + 1) (String.length rest - colon - 1)) in
  let eq = String.index tail '=' in
  let size_part = strip (String.sub tail 0 eq) in
  let gsize =
    match String.index_opt size_part ' ' with
    | Some i -> int_of_string (String.sub size_part 0 i)
    | None -> int_of_string size_part
  in
  let init_s = strip (String.sub tail (eq + 1) (String.length tail - eq - 1)) in
  let between_braces s =
    let o = String.index s '{' and c = String.rindex s '}' in
    String.sub s (o + 1) (c - o - 1)
  in
  let ginit =
    if init_s = "zeroed" then Zeroed
    else if starts_with ~prefix:"i64{" init_s then
      I64s
        (Array.of_list
           (List.map Int64.of_string (split_commas (between_braces init_s))))
    else if starts_with ~prefix:"f64{" init_s then
      F64s
        (Array.of_list
           (List.map float_of_string (split_commas (between_braces init_s))))
    else if starts_with ~prefix:"ptrs{" init_s then
      Ptrs
        (Array.of_list
           (List.map
              (fun s ->
                if s = "null" then ""
                else if starts_with ~prefix:"@" s then after ~prefix:"@" s
                else fail "bad ptr initialiser %s" s)
              (split_commas (between_braces init_s))))
    else if init_s <> "" && init_s.[0] = '"' then Str (Scanf.sscanf init_s "%S" Fun.id)
    else fail "bad initialiser: %s" init_s
  in
  { gname; gsize; ginit; gread_only }

(* ------------------------------------------------------------------ *)
(* Functions and modules                                               *)

let parse (text : string) : modul =
  let lines =
    List.filter (fun l -> strip l <> "") (String.split_on_char '\n' text)
  in
  let m = { globals = []; funcs = [] } in
  let rec top = function
    | [] -> ()
    | line :: rest when starts_with ~prefix:"global " (strip line) ->
      m.globals <- m.globals @ [ parse_global (strip line) ];
      top rest
    | line :: rest
      when starts_with ~prefix:"func " (strip line)
           || starts_with ~prefix:"kernel " (strip line) ->
      let line = strip line in
      let fkind, rest_line =
        if starts_with ~prefix:"func " line then (Cpu, after ~prefix:"func " line)
        else (Kernel, after ~prefix:"kernel " line)
      in
      (* NAME(N args, M regs) { *)
      let name, meta = parse_call_syntax rest_line in
      let nargs, nregs =
        match meta with
        | [ a; r ] ->
          ( Scanf.sscanf a "%d args" Fun.id,
            Scanf.sscanf r "%d regs" Fun.id )
        | _ -> fail "malformed function header: %s" line
      in
      let blocks = ref [] in
      let cur_instrs = ref [] in
      let cur_term = ref None in
      let flush_block () =
        match !cur_term with
        | Some t ->
          blocks := { instrs = List.rev !cur_instrs; term = t } :: !blocks;
          cur_instrs := [];
          cur_term := None
        | None ->
          if !cur_instrs <> [] then fail "%s: block without terminator" name
      in
      let rec body = function
        | [] -> fail "%s: unterminated function" name
        | l :: ls when strip l = "}" ->
          flush_block ();
          let f =
            {
              fname = name;
              nargs;
              nregs;
              blocks = Array.of_list (List.rev !blocks);
              fkind;
            }
          in
          add_func m f;
          ls
        | l :: ls ->
          let l' = strip l in
          if String.length l' > 1 && l'.[0] = 'b' && String.contains l' ':'
             && (match int_of_string_opt (String.sub l' 1 (String.index l' ':' - 1)) with
                | Some _ -> true
                | None -> false)
          then begin
            flush_block ();
            body ls
          end
          else if is_term l' then begin
            cur_term := Some (parse_term l');
            body ls
          end
          else begin
            cur_instrs := parse_instr l' :: !cur_instrs;
            body ls
          end
      in
      top (body rest)
    | line :: _ -> fail "unexpected top-level line: %s" (strip line)
  in
  top lines;
  m

let parse_verified text =
  let m = parse text in
  Verifier.verify_modul m;
  m
