(* Structural well-formedness checks for IR modules. Run after the frontend
   and after every transformation pass; a pass that produces ill-formed IR
   is a compiler bug, so failures raise. *)

open Ir

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let verify_func (m : modul) (f : func) =
  let nblocks = Array.length f.blocks in
  if nblocks = 0 then fail "%s: no blocks" f.fname;
  (* Branch targets in range. *)
  Array.iteri
    (fun bi block ->
      List.iter
        (fun s ->
          if s < 0 || s >= nblocks then
            fail "%s: block b%d branches to nonexistent b%d" f.fname bi s)
        (succs_of_term block.term))
    f.blocks;
  (* Single assignment, register indices in range. *)
  let defined = Array.make f.nregs false in
  for a = 0 to f.nargs - 1 do
    defined.(a) <- true
  done;
  let def_block = Array.make f.nregs (-1) in
  Array.iteri
    (fun bi block ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some d ->
            if d < 0 || d >= f.nregs then
              fail "%s: register %%r%d out of range" f.fname d;
            if defined.(d) then fail "%s: %%r%d defined twice" f.fname d;
            defined.(d) <- true;
            def_block.(d) <- bi
          | None -> ())
        block.instrs)
    f.blocks;
  (* Every used register has a reaching definition: its defining block
     dominates the use (same-block ordering is checked separately). *)
  let dom = Dominance.compute f in
  let reach = Cfg.reachable f in
  Array.iteri
    (fun bi block ->
      if reach.(bi) then begin
        let seen_here = Hashtbl.create 8 in
        let check_use where v =
          match v with
          | Reg r ->
            if r < 0 || r >= f.nregs then
              fail "%s: use of out-of-range %%r%d in %s" f.fname r where;
            if not defined.(r) then
              fail "%s: use of undefined %%r%d in %s" f.fname r where;
            if r >= f.nargs then begin
              let db = def_block.(r) in
              if db = bi then begin
                if not (Hashtbl.mem seen_here r) then
                  fail "%s: %%r%d used before its definition in b%d" f.fname r bi
              end
              else if not (Dominance.dominates dom db bi) then
                fail "%s: def of %%r%d (b%d) does not dominate use in b%d"
                  f.fname r db bi
            end
          | Imm_int _ | Imm_float _ -> ()
          | Global g ->
            if find_global m g = None then
              fail "%s: reference to unknown global @%s" f.fname g
        in
        List.iter
          (fun i ->
            List.iter (check_use "instr") (uses_of_instr i);
            (match i with
            | Launch { kernel; _ } -> begin
              match find_func m kernel with
              | Some k when k.fkind = Kernel -> ()
              | Some _ -> fail "%s: launch of non-kernel %s" f.fname kernel
              | None -> fail "%s: launch of unknown kernel %s" f.fname kernel
            end
            | Call (_, name, _) -> begin
              match find_func m name with
              | Some k when k.fkind = Kernel ->
                fail "%s: direct call to kernel %s" f.fname name
              | _ -> ()  (* intrinsics are resolved by the interpreter *)
            end
            | _ -> ());
            match def_of_instr i with
            | Some d -> Hashtbl.replace seen_here d ()
            | None -> ())
          block.instrs;
        List.iter (check_use "terminator") (uses_of_term block.term)
      end)
    f.blocks;
  (* Kernels must not launch other kernels and must not contain allocas
     whose address could be stored (the paper forbids storing pointers in
     GPU functions; the frontend enforces the source-level restriction,
     here we only forbid nested launches). *)
  if f.fkind = Kernel then
    iter_instrs
      (fun _ i ->
        match i with
        | Launch _ -> fail "%s: kernel launches a kernel" f.fname
        | _ -> ())
      f

let verify_modul (m : modul) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : global) ->
      if Hashtbl.mem seen g.gname then fail "duplicate global %s" g.gname;
      Hashtbl.replace seen g.gname ();
      let isz = init_size g.ginit in
      if isz > g.gsize then
        fail "global %s: initialiser (%d bytes) larger than size (%d)" g.gname
          isz g.gsize;
      match g.ginit with
      | Ptrs names ->
        Array.iter
          (fun n ->
            (* "" initialises to null *)
            if n <> "" && find_global m n = None then
              fail "global %s: initialiser references unknown global %s" g.gname n)
          names
      | _ -> ())
    m.globals;
  let seenf = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seenf f.fname then fail "duplicate function %s" f.fname;
      Hashtbl.replace seenf f.fname ();
      verify_func m f)
    m.funcs
