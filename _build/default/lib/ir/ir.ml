(* The intermediate representation CGCM's compiler passes operate on.

   Registers hold 64-bit words; whether a word is a pointer is *not* part
   of the type system. This mirrors the setting of the paper: C and C++
   types are unreliable, so pointer-ness must be recovered by use-based
   type inference (Analysis.Typeinfer), never read off a declaration.

   The IR is not SSA in the classical sense — there are no phis; local
   variables live in stack slots created by [Alloca] and are accessed with
   loads and stores, as in unoptimized LLVM IR. Virtual registers are
   still single-assignment, which the verifier enforces. *)

type ty = I8 | I64 | F64

type value =
  | Reg of int
  | Imm_int of int64
  | Imm_float of float
  | Global of string  (* address of the named global in the executing space *)

type binop =
  (* 64-bit integer ops *)
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  (* float ops *)
  | Fadd | Fsub | Fmul | Fdiv
  (* comparisons produce 0/1 in an integer register *)
  | Eq | Ne | Lt | Le | Gt | Ge
  | Feq | Fne | Flt | Fle | Fgt | Fge

type unop =
  | Neg | Not
  | Fneg
  | Int_to_float
  | Float_to_int  (* truncation *)

type alloca_info = {
  aname : string;  (* source-level variable name, for diagnostics *)
  (* Set by the communication-management pass for stack variables whose
     address escapes to a kernel: the interpreter then registers the unit
     with the CGCM run-time (the paper's declareAlloca) and expires the
     registration when the frame pops. *)
  mutable aregistered : bool;
}

type instr =
  | Binop of int * binop * value * value
  | Unop of int * unop * value
  | Load of int * ty * value  (* dst, width, address *)
  | Store of ty * value * value  (* width, address, stored value *)
  | Alloca of int * value * alloca_info  (* dst := address of [size] fresh bytes *)
  | Call of int option * string * value list
  | Launch of { kernel : string; trip : value; args : value list }

type terminator =
  | Br of int
  | Cbr of value * int * int  (* if value <> 0 then goto b1 else b2 *)
  | Ret of value option

type block = { mutable instrs : instr list; mutable term : terminator }

type fkind =
  | Cpu  (* ordinary host function *)
  | Kernel  (* launched on the device over a grid of threads *)

type func = {
  fname : string;
  (* registers [0, nargs) are the formal parameters; mutable because
     alloca promotion appends parameters *)
  mutable nargs : int;
  mutable nregs : int;
  mutable blocks : block array;  (* block 0 is the entry *)
  fkind : fkind;
}

type ginit =
  | Zeroed
  | I64s of int64 array
  | F64s of float array
  | Str of string  (* NUL-terminated byte data *)
  | Ptrs of string array  (* addresses of other globals *)

type global = {
  gname : string;
  gsize : int;  (* bytes *)
  ginit : ginit;
  gread_only : bool;
}

type modul = { mutable globals : global list; mutable funcs : func list }

(* ------------------------------------------------------------------ *)
(* Constructors and small helpers                                      *)

let imm i = Imm_int (Int64.of_int i)

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func_exn: no function " ^ name)

let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

let add_func m f =
  if find_func m f.fname <> None then
    invalid_arg ("Ir.add_func: duplicate function " ^ f.fname);
  m.funcs <- m.funcs @ [ f ]

let replace_func m f =
  m.funcs <- List.map (fun g -> if g.fname = f.fname then f else g) m.funcs

let fresh_reg f =
  let r = f.nregs in
  f.nregs <- r + 1;
  r

let add_block f block =
  let n = Array.length f.blocks in
  f.blocks <- Array.append f.blocks [| block |];
  n

let init_size = function
  | Zeroed -> 0
  | I64s a -> 8 * Array.length a
  | F64s a -> 8 * Array.length a
  | Str s -> String.length s + 1
  | Ptrs a -> 8 * Array.length a

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)

let def_of_instr = function
  | Binop (d, _, _, _) | Unop (d, _, _) | Load (d, _, _) | Alloca (d, _, _) ->
    Some d
  | Call (d, _, _) -> d
  | Store _ | Launch _ -> None

let uses_of_instr = function
  | Binop (_, _, a, b) -> [ a; b ]
  | Unop (_, _, a) -> [ a ]
  | Load (_, _, a) -> [ a ]
  | Store (_, a, v) -> [ a; v ]
  | Alloca (_, size, _) -> [ size ]
  | Call (_, _, args) -> args
  | Launch { trip; args; _ } -> trip :: args

let uses_of_term = function
  | Br _ -> []
  | Cbr (v, _, _) -> [ v ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let map_uses_instr f = function
  | Binop (d, op, a, b) -> Binop (d, op, f a, f b)
  | Unop (d, op, a) -> Unop (d, op, f a)
  | Load (d, ty, a) -> Load (d, ty, f a)
  | Store (ty, a, v) -> Store (ty, f a, f v)
  | Alloca (d, size, info) -> Alloca (d, f size, info)
  | Call (d, name, args) -> Call (d, name, List.map f args)
  | Launch { kernel; trip; args } ->
    Launch { kernel; trip = f trip; args = List.map f args }

let succs_of_term = function
  | Br b -> [ b ]
  | Cbr (_, b1, b2) -> if b1 = b2 then [ b1 ] else [ b1; b2 ]
  | Ret _ -> []

let iter_instrs f func =
  Array.iteri (fun bi block -> List.iter (fun i -> f bi i) block.instrs) func.blocks

let fold_instrs f acc func =
  let acc = ref acc in
  iter_instrs (fun bi i -> acc := f !acc bi i) func;
  !acc

(* Kernels launched (transitively reachable launches) by a function body. *)
let launched_kernels func =
  fold_instrs
    (fun acc _ i ->
      match i with
      | Launch { kernel; _ } -> if List.mem kernel acc then acc else kernel :: acc
      | _ -> acc)
    [] func

(* Globals referenced anywhere in a function. *)
let globals_used func =
  let acc = ref [] in
  let see = function
    | Global g -> if not (List.mem g !acc) then acc := g :: !acc
    | _ -> ()
  in
  Array.iter
    (fun b ->
      List.iter (fun i -> List.iter see (uses_of_instr i)) b.instrs;
      List.iter see (uses_of_term b.term))
    func.blocks;
  List.rev !acc

(* Names of the CGCM run-time intrinsics inserted by the compiler. *)
module Intrinsic = struct
  let map = "cgcm.map"
  let unmap = "cgcm.unmap"
  let release = "cgcm.release"
  let map_array = "cgcm.map_array"
  let unmap_array = "cgcm.unmap_array"
  let release_array = "cgcm.release_array"

  let is_cgcm name =
    String.length name > 5 && String.sub name 0 5 = "cgcm."

  (* Pure math intrinsics: callable from kernels, no memory effects. *)
  let pure_math =
    [ "sqrt"; "exp"; "log"; "pow"; "fabs"; "floor"; "ceil"; "sin"; "cos"; "tan" ]

  let is_pure_math name = List.mem name pure_math
end
