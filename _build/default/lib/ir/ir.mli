(** The intermediate representation CGCM's compiler passes operate on.

    Registers hold 64-bit words; whether a word is a pointer is {e not}
    part of the type system. This mirrors the setting of the paper: C and
    C++ types are unreliable, so pointer-ness must be recovered by
    use-based type inference ({!Cgcm_analysis.Typeinfer}), never read off
    a declaration.

    The IR is not SSA in the classical sense — there are no phis; local
    variables live in stack slots created by {!instr.Alloca} and are
    accessed with loads and stores, as in unoptimized LLVM IR. Virtual
    registers are still single-assignment, which the verifier enforces. *)

(** Memory access widths. Register values are 64-bit integers or floats;
    [I8] loads zero-extend, [I8] stores truncate. *)
type ty = I8 | I64 | F64

type value =
  | Reg of int
  | Imm_int of int64
  | Imm_float of float
  | Global of string
      (** address of the named global {e in the executing space}: host
          address on the CPU, device address (via cuModuleGetGlobal)
          inside a kernel *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Fadd | Fsub | Fmul | Fdiv
  | Eq | Ne | Lt | Le | Gt | Ge  (** comparisons produce 0/1 *)
  | Feq | Fne | Flt | Fle | Fgt | Fge

type unop = Neg | Not | Fneg | Int_to_float | Float_to_int

type alloca_info = {
  aname : string;  (** source-level variable name, for diagnostics *)
  mutable aregistered : bool;
      (** set by communication management for stack variables whose
          address escapes to a kernel: the interpreter then registers the
          unit with the run-time (declareAlloca) and expires the
          registration when the frame pops *)
}

type instr =
  | Binop of int * binop * value * value
  | Unop of int * unop * value
  | Load of int * ty * value  (** dst, width, address *)
  | Store of ty * value * value  (** width, address, stored value *)
  | Alloca of int * value * alloca_info
      (** dst := address of [size] fresh (zeroed) bytes in the executing
          space's stack; freed when the frame pops *)
  | Call of int option * string * value list
      (** user functions and intrinsics: malloc, print, math, the cgcm runtime *)
  | Launch of { kernel : string; trip : value; args : value list }
      (** run [trip] device threads of [kernel]; the thread index is the
          kernel's implicit first argument *)

type terminator =
  | Br of int
  | Cbr of value * int * int  (** if value <> 0 then b1 else b2 *)
  | Ret of value option

type block = { mutable instrs : instr list; mutable term : terminator }

type fkind =
  | Cpu  (** ordinary host function *)
  | Kernel  (** launched on the device over a grid of threads *)

type func = {
  fname : string;
  mutable nargs : int;
      (** registers [0, nargs) are the formal parameters; mutable because
          alloca promotion appends parameters *)
  mutable nregs : int;
  mutable blocks : block array;  (** block 0 is the entry *)
  fkind : fkind;
}

type ginit =
  | Zeroed
  | I64s of int64 array
  | F64s of float array
  | Str of string  (** NUL-terminated byte data *)
  | Ptrs of string array
      (** addresses of other globals; "" initialises to null *)

type global = {
  gname : string;
  gsize : int;  (** bytes *)
  ginit : ginit;
  gread_only : bool;  (** read-only units are never copied back (unmap) *)
}

type modul = { mutable globals : global list; mutable funcs : func list }

(** {2 Construction helpers} *)

val imm : int -> value

val find_func : modul -> string -> func option
val find_func_exn : modul -> string -> func
val find_global : modul -> string -> global option

val add_func : modul -> func -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val replace_func : modul -> func -> unit

val fresh_reg : func -> int

val add_block : func -> block -> int
(** Appends; returns the new block's index. *)

val init_size : ginit -> int

(** {2 Traversal helpers} *)

val def_of_instr : instr -> int option
val uses_of_instr : instr -> value list
val uses_of_term : terminator -> value list
val map_uses_instr : (value -> value) -> instr -> instr
val succs_of_term : terminator -> int list

val iter_instrs : (int -> instr -> unit) -> func -> unit
(** Visit every instruction with its block index. *)

val fold_instrs : ('a -> int -> instr -> 'a) -> 'a -> func -> 'a

val launched_kernels : func -> string list
val globals_used : func -> string list

(** Names of the run-time intrinsics inserted by the compiler. *)
module Intrinsic : sig
  val map : string
  val unmap : string
  val release : string
  val map_array : string
  val unmap_array : string
  val release_array : string

  val is_cgcm : string -> bool
  (** Does the name belong to the CGCM run-time? *)

  val pure_math : string list
  (** Math intrinsics callable from kernels: no memory effects. *)

  val is_pure_math : string -> bool
end
