(** Plain-text table renderer with automatic column widths. *)

type align = Left | Right

val render :
  ?aligns:align list -> header:string list -> string list list -> string
(** [render ~aligns ~header rows]: columns are sized to the widest cell;
    rows longer than the header are truncated, shorter ones padded.
    Unspecified alignments default to [Left]. *)
