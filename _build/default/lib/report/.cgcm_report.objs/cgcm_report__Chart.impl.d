lib/report/chart.ml: Buffer Bytes List Printf String
