lib/report/chart.mli:
