lib/report/table.mli:
