(* ASCII bar chart for whole-program speedups (Figure 4 style). The axis
   is logarithmic, as in the paper's figure, so slowdowns and large
   speedups are both visible. *)

let log_bar ~width ~lo ~hi v =
  let v = max lo (min hi v) in
  let frac = (log v -. log lo) /. (log hi -. log lo) in
  let n = int_of_float (frac *. float_of_int width) in
  String.make (max 0 n) '#'

(* [series]: (label, speedup) pairs per program. *)
let speedups ?(width = 48) ?(lo = 0.01) ?(hi = 100.0)
    (rows : (string * (string * float) list) list) : string =
  let buf = Buffer.create 4096 in
  let name_w =
    List.fold_left (fun m (n, _) -> max m (String.length n)) 0 rows
  in
  let series_names =
    match rows with (_, s) :: _ -> List.map fst s | [] -> []
  in
  let label_w =
    List.fold_left (fun m n -> max m (String.length n)) 0 series_names
  in
  Buffer.add_string buf
    (Printf.sprintf "%s  (log scale, %.2fx .. %.0fx; '|' marks 1.0x)\n"
       (String.make name_w ' ') lo hi);
  let one_mark =
    int_of_float
      (log (1.0 /. lo) /. log (hi /. lo) *. float_of_int width)
  in
  List.iter
    (fun (name, series) ->
      List.iteri
        (fun i (label, v) ->
          let bar = log_bar ~width ~lo ~hi v in
          let bar =
            (* overlay the 1.0x marker *)
            let b = Bytes.make (width + 1) ' ' in
            Bytes.blit_string bar 0 b 0 (String.length bar);
            if one_mark >= 0 && one_mark <= width then
              Bytes.set b one_mark
                (if String.length bar > one_mark then '+' else '|');
            Bytes.to_string b
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s  %-*s %s %8.2fx\n"
               name_w
               (if i = 0 then name else "")
               label_w label bar v))
        series;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
