(* Plain-text table renderer with automatic column widths. *)

type align = Left | Right

let render ?(aligns : align list = []) ~(header : string list)
    (rows : string list list) : string =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Left
  in
  let pad i cell =
    let w = widths.(i) in
    let n = String.length cell in
    if n >= w then cell
    else
      match align_of i with
      | Left -> cell ^ String.make (w - n) ' '
      | Right -> String.make (w - n) ' ' ^ cell
  in
  let line row =
    (* cells beyond the header are dropped; missing cells padded empty *)
    let cells = List.filteri (fun i _ -> i < ncols) row in
    let cells =
      cells @ List.init (ncols - List.length cells) (fun _ -> "")
    in
    String.concat "  " (List.mapi pad cells)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
