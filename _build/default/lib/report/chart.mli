(** ASCII bar chart for whole-program speedups (Figure 4 style), on a
    logarithmic axis so slowdowns and large speedups are both visible. *)

val log_bar : width:int -> lo:float -> hi:float -> float -> string
(** Bar of '#' characters, log-scaled and clamped to [lo, hi]. *)

val speedups :
  ?width:int ->
  ?lo:float ->
  ?hi:float ->
  (string * (string * float) list) list ->
  string
(** [(program, [(configuration, speedup); ...]); ...] — one bar per
    configuration per program, with a '|' marker at 1.0x. *)
