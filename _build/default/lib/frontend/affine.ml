(* Affine analysis of index expressions relative to a candidate parallel
   loop variable. Used by the DOALL dependence test.

   A flat (element-granularity) index expression is decomposed as

       a * i  +  h(inner loop variables)  +  inv

   where [i] is the parallel induction variable, [h] ranges over inner
   sequential loop variables with known constant bounds (its numeric range
   is tracked as an interval), and [inv] is a multiset of syntactic atoms
   that are invariant across iterations of [i]. Two footprints with the
   same [inv] part differ only by their [a*i + h] components, which is
   what the disjointness test reasons about. *)

open Ast

type atom = int * expr  (* coefficient * invariant expression *)

type form = {
  icoeff : int;  (* coefficient of the parallel variable *)
  lo : int;  (* numeric lower bound of the varying-constant part *)
  hi : int;  (* numeric upper bound (inclusive) *)
  inv : atom list;  (* sorted invariant atoms *)
}

type env = {
  parallel_var : string;
  (* inner sequential loop variables with inclusive constant ranges *)
  inner : (string * (int * int)) list;
  (* variables modified somewhere in the loop body (not invariant) *)
  modified : string list;
}

let const c = { icoeff = 0; lo = c; hi = c; inv = [] }

(* Constant folding over integer expressions. *)
let rec const_eval (e : expr) : int option =
  match e with
  | Int_lit c -> Some (Int64.to_int c)
  | Sizeof t -> Some (sizeof t)
  | Unary (Uneg, a) -> Option.map (fun x -> -x) (const_eval a)
  | Binary (op, a, b) -> (
    match (const_eval a, const_eval b) with
    | Some x, Some y -> (
      match op with
      | Badd -> Some (x + y)
      | Bsub -> Some (x - y)
      | Bmul -> Some (x * y)
      | Bdiv -> if y = 0 then None else Some (x / y)
      | Brem -> if y = 0 then None else Some (x mod y)
      | _ -> None)
    | _ -> None)
  | Cast ((Int | Char), a) -> const_eval a
  | _ -> None

let rec expr_equal a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> x = y
  | Float_lit x, Float_lit y -> x = y
  | Ident x, Ident y -> x = y
  | Binary (o1, a1, b1), Binary (o2, a2, b2) ->
    o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Unary (o1, a1), Unary (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Index (a1, i1), Index (a2, i2) -> expr_equal a1 a2 && expr_equal i1 i2
  | Field (a1, f1), Field (a2, f2) -> f1 = f2 && expr_equal a1 a2
  | Arrow (a1, f1), Arrow (a2, f2) -> f1 = f2 && expr_equal a1 a2
  | Deref a1, Deref a2 -> expr_equal a1 a2
  | Addr_of a1, Addr_of a2 -> expr_equal a1 a2
  | Cast (t1, a1), Cast (t2, a2) -> t1 = t2 && expr_equal a1 a2
  | Sizeof t1, Sizeof t2 -> t1 = t2
  | Cond (c1, a1, b1), Cond (c2, a2, b2) ->
    expr_equal c1 c2 && expr_equal a1 a2 && expr_equal b1 b2
  | Call _, Call _ -> false  (* calls are never invariant atoms *)
  | _ -> false

let atom_compare (c1, e1) (c2, e2) =
  let s = compare c1 c2 in
  if s <> 0 then s else compare e1 e2

(* Merge two sorted atom lists, summing coefficients of equal atoms. *)
let merge_atoms a b =
  let all = a @ b in
  let rec insert (c, e) = function
    | [] -> [ (c, e) ]
    | (c', e') :: rest when expr_equal e e' ->
      let s = c + c' in
      if s = 0 then rest else (s, e') :: rest
    | x :: rest -> x :: insert (c, e) rest
  in
  List.fold_left (fun acc atom -> insert atom acc) [] all
  |> List.sort atom_compare

let add f1 f2 =
  {
    icoeff = f1.icoeff + f2.icoeff;
    lo = f1.lo + f2.lo;
    hi = f1.hi + f2.hi;
    inv = merge_atoms f1.inv f2.inv;
  }

let neg f =
  {
    icoeff = -f.icoeff;
    lo = -f.hi;
    hi = -f.lo;
    inv = List.map (fun (c, e) -> (-c, e)) f.inv;
  }

let rec scale k f =
  if k >= 0 then
    {
      icoeff = k * f.icoeff;
      lo = k * f.lo;
      hi = k * f.hi;
      inv = List.map (fun (c, e) -> (k * c, e)) f.inv;
    }
  else neg (scale (-k) f)

let is_const f = f.icoeff = 0 && f.lo = f.hi && f.inv = []

let is_invariant_only f = f.icoeff = 0 && f.lo = 0 && f.hi = 0

(* Does [e] mention any variable from [names]? *)
let rec mentions names e =
  match e with
  | Ident x -> List.mem x names
  | Int_lit _ | Float_lit _ | Sizeof _ -> false
  | Binary (_, a, b) -> mentions names a || mentions names b
  | Unary (_, a) | Deref a | Addr_of a | Cast (_, a)
  | Field (a, _) | Arrow (a, _) ->
    mentions names a
  | Cond (c, a, b) -> mentions names c || mentions names a || mentions names b
  | Index (a, i) -> mentions names a || mentions names i
  | Call (_, args) -> List.exists (mentions names) args

(* Decompose [e]; None = not affine in the required sense. *)
let rec of_expr (env : env) (e : expr) : form option =
  match e with
  | Int_lit c -> Some (const (Int64.to_int c))
  | Ident x when x = env.parallel_var ->
    Some { icoeff = 1; lo = 0; hi = 0; inv = [] }
  | Ident x -> (
    match List.assoc_opt x env.inner with
    | Some (lo, hi) -> Some { icoeff = 0; lo; hi; inv = [] }
    | None ->
      if List.mem x env.modified then None
      else Some { icoeff = 0; lo = 0; hi = 0; inv = [ (1, e) ] })
  | Binary (Badd, a, b) -> (
    match (of_expr env a, of_expr env b) with
    | Some fa, Some fb -> Some (add fa fb)
    | _ -> None)
  | Binary (Bsub, a, b) -> (
    match (of_expr env a, of_expr env b) with
    | Some fa, Some fb -> Some (add fa (neg fb))
    | _ -> None)
  | Binary (Bmul, a, b) -> (
    match (of_expr env a, of_expr env b) with
    | Some fa, Some fb when is_const fa -> Some (scale fa.lo fb)
    | Some fa, Some fb when is_const fb -> Some (scale fb.lo fa)
    | Some fa, Some fb when is_invariant_only fa && is_invariant_only fb ->
      (* product of two invariants is itself a single invariant atom *)
      Some { icoeff = 0; lo = 0; hi = 0; inv = [ (1, e) ] }
    | _ -> None)
  | Unary (Uneg, a) -> Option.map neg (of_expr env a)
  | Cast ((Int | Char), a) -> of_expr env a
  | _ ->
    (* Anything else is affine only if invariant. *)
    let varying = env.parallel_var :: List.map fst env.inner @ env.modified in
    if mentions varying e then None
    else if (match e with Call _ -> true | _ -> false) then None
    else Some { icoeff = 0; lo = 0; hi = 0; inv = [ (1, e) ] }

let same_inv f1 f2 =
  List.length f1.inv = List.length f2.inv
  && List.for_all2
       (fun (c1, e1) (c2, e2) -> c1 = c2 && expr_equal e1 e2)
       f1.inv f2.inv

(* Write/write disjointness across iterations: with footprints
   a*i + [lo1,hi1] and a*i' + [lo2,hi2] (same a, same inv), distinct
   iterations are disjoint iff no nonzero multiple of a lies in
   [lo2 - hi1, hi2 - lo1]. *)
let cross_iteration_overlap ~a ~w:(lo1, hi1) ~r:(lo2, hi2) =
  if a = 0 then true
  else begin
    let d_lo = lo2 - hi1 and d_hi = hi2 - lo1 in
    (* is there k <> 0 with a*k in [d_lo, d_hi]? *)
    let a = abs a in
    let k_lo = int_of_float (ceil (float_of_int d_lo /. float_of_int a)) in
    let k_hi = int_of_float (floor (float_of_int d_hi /. float_of_int a)) in
    let exists_nonzero = k_lo <= k_hi && not (k_lo = 0 && k_hi = 0) in
    exists_nonzero
  end
