(** Hand-written lexer for CGC, producing a token array with positions so
    the recursive-descent parser can look ahead cheaply. *)

type pos = { line : int; col : int }

exception Lex_error of string * pos

type lexed = { tok : Token.t; pos : pos }

val tokenize : string -> lexed array
(** The array always ends with {!Token.EOF}. Comments ([//] and
    [/* */]) and whitespace are skipped. *)
