(** Lowering from the CGC AST to the word-typed IR.

    All source-level typing is resolved here and then erased: the IR that
    CGCM's passes see has no pointer types, exactly like the LLVM IR the
    paper works on once C's type system has been deemed unreliable.

    Every local variable gets a stack slot (allocas hoisted into the entry
    block); reads and writes go through loads and stores; virtual
    registers are single-assignment. Semantic checking happens here too:
    scoping, arity, assignability, the kernel restrictions (thread-index
    first parameter, at most two levels of indirection on parameters, no
    pointer stores into memory, math intrinsics only), and the
    [int main()] entry requirement. *)

exception Sema_error of string

val lower_program : Ast.program -> Cgcm_ir.Ir.modul
(** Expects a program already processed by {!Doall.transform} (no
    'parallel' annotations remain). The result is verified. *)
