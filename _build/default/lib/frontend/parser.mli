(** Recursive-descent parser for CGC.

    Notable grammar choices: struct definitions must precede use (their
    layout is embedded into the type, see {!Ast.sdef}); the trip count in
    [launch k<e>(...)] uses the additive grammar so '>' terminates it;
    array dimensions may be empty ([char s[] = "..."]) only where an
    initialiser fixes the size. *)

exception Parse_error of string * Lexer.pos

val parse_string : string -> Ast.program
