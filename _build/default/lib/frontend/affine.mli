(** Affine analysis of index expressions relative to a candidate parallel
    loop variable — the core of the DOALL dependence test.

    A flat (element-granularity) index expression is decomposed as
    [a*i + h(inner loop variables) + inv] where [i] is the parallel
    induction variable, [h] ranges over inner sequential loop variables
    with known constant bounds (tracked as a numeric interval), and [inv]
    is a multiset of syntactic atoms invariant across iterations of [i].
    Footprints with equal [inv] parts differ only by [a*i + h], which the
    disjointness test reasons about. *)

type atom = int * Ast.expr  (** coefficient * invariant expression *)

type form = {
  icoeff : int;  (** coefficient of the parallel variable *)
  lo : int;  (** lower bound of the varying-constant part *)
  hi : int;  (** upper bound (inclusive) *)
  inv : atom list;  (** sorted invariant atoms *)
}

type env = {
  parallel_var : string;
  inner : (string * (int * int)) list;
      (** inner sequential loop variables with inclusive constant ranges *)
  modified : string list;
      (** variables modified somewhere in the loop body *)
}

val const_eval : Ast.expr -> int option
(** Constant folding over integer expressions (literals, arithmetic,
    sizeof, int casts). *)

val expr_equal : Ast.expr -> Ast.expr -> bool
(** Structural equality, used to compare invariant atoms. *)

val mentions : string list -> Ast.expr -> bool
(** Does the expression mention any of the named variables? *)

val of_expr : env -> Ast.expr -> form option
(** Decompose an index expression; [None] = not affine in the required
    sense (mentions a modified variable, non-constant multiplication,
    a call, ...). *)

val same_inv : form -> form -> bool

val cross_iteration_overlap : a:int -> w:int * int -> r:int * int -> bool
(** With a write footprint [a*i + w] and a read footprint [a*i' + r]
    (same stride, same invariant part), do {e distinct} iterations
    overlap? True iff a nonzero multiple of [a] lies in
    [fst r - snd w, snd r - fst w]; [a = 0] always overlaps. *)
