(** The "simple automatic DOALL parallelizer" of Section 6.

    Finds loops whose iterations are independent, outlines each body into
    a GPU kernel, and replaces the loop with a launch. CGCM itself is
    downstream of this pass and works identically for manual
    ('parallel'-annotated) and automatic parallelizations, as the paper
    stresses.

    The dependence test is deliberately simple: a loop parallelizes when
    its memory writes are affine in the induction variable with
    per-iteration-disjoint footprints, its scalar writes are all to
    iteration-private variables, and reads of written objects cannot
    conflict across iterations. Unlike CGCM proper it needs static alias
    information: distinct declared arrays never alias; accesses through
    pointer variables may alias anything (annotate those loops).

    Perfect two-deep nests whose inner loop is also independent (proved
    or annotated) are flattened into a 2-D grid of trip_i * trip_j
    threads — the <<<blocks, threads>>> grids of real CUDA mappings. *)

exception Doall_error of string
(** Raised when a 'parallel'-annotated loop cannot be outlined (it must
    still have canonical induction structure). *)

type mode =
  | Auto  (** test every loop; honour annotations where the test fails *)
  | Manual_only  (** only annotated loops *)
  | Off  (** strip annotations; the sequential baseline *)

type kernel_info = {
  k_name : string;
  k_func : string;  (** enclosing CPU function *)
  k_manual : bool;  (** annotation-driven rather than proved *)
  k_named_applicable : bool;
      (** are all pointer live-ins distinct named allocation units with
          affine indexing? The applicability condition shared by the
          named-regions and inspector-executor baselines (Table 3). *)
}

type loop_note = {
  l_func : string;
  l_outcome : [ `Parallelized of string | `Rejected of string ];
}

type report = {
  mutable kernels : kernel_info list;
  mutable notes : loop_note list;
}

val transform : mode:mode -> Ast.program -> Ast.program * report
(** Outline parallelizable loops; synthesised kernels are appended to the
    returned program. *)
