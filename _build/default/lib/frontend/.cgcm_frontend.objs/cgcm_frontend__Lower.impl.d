lib/frontend/lower.ml: Array Ast Cgcm_ir Fmt Hashtbl Int64 List Option String
