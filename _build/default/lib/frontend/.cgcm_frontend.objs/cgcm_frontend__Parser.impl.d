lib/frontend/parser.ml: Array Ast Fmt Hashtbl Int64 Lexer List Token
