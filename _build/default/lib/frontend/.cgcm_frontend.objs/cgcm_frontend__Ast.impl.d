lib/frontend/ast.ml: Fmt List Printf String
