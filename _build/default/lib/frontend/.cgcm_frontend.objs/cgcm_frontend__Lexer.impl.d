lib/frontend/lexer.ml: Array Buffer Fmt Int64 List String Token
