lib/frontend/doall.ml: Affine Ast Cgcm_ir Fmt Hashtbl Int64 List Option
