lib/frontend/doall.mli: Ast
