lib/frontend/lower.mli: Ast Cgcm_ir
