lib/frontend/affine.mli: Ast
