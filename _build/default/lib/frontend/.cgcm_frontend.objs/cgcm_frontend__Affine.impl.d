lib/frontend/affine.ml: Ast Int64 List Option
