(* The "simple automatic DOALL parallelizer" of Section 6: finds loops
   whose iterations are independent, outlines each body into a GPU kernel,
   and replaces the loop with a kernel launch. CGCM itself is downstream
   of this pass and works the same for manual ('parallel'-annotated) and
   automatic parallelizations, as in the paper.

   The dependence test is intentionally simple (the paper's is too): it
   accepts loops whose memory writes are affine in the induction variable
   with per-iteration-disjoint footprints, whose scalar writes are all to
   iteration-private variables, and whose reads of written objects cannot
   conflict across iterations. Unlike CGCM proper, it needs static alias
   information: distinct declared arrays never alias, while accesses
   through pointer variables may alias anything. *)

open Ast

exception Doall_error of string

let error fmt = Fmt.kstr (fun s -> raise (Doall_error s)) fmt

type mode = Auto | Manual_only | Off

type kernel_info = {
  k_name : string;
  k_func : string;  (* enclosing CPU function *)
  k_manual : bool;
  (* Are all pointer live-ins distinct named allocation units with affine
     induction-variable indexing? This is the applicability condition
     shared by the named-regions and inspector-executor baselines. *)
  k_named_applicable : bool;
}

type loop_note = {
  l_func : string;
  l_outcome : [ `Parallelized of string | `Rejected of string ];
}

type report = { mutable kernels : kernel_info list; mutable notes : loop_note list }

(* ------------------------------------------------------------------ *)
(* Canonical loop shape                                                *)

type canon = {
  c_var : string;
  c_declared : bool;  (* induction variable declared in the init *)
  c_lo : expr;
  c_op : binop;  (* Blt | Ble | Bgt | Bge *)
  c_bound : expr;
  c_step : int;  (* positive *)
  c_dir : [ `Up | `Down ];
}

let recognize_canon (f : for_info) : (canon, string) result =
  let var_lo =
    match f.init with
    | Some (Decl (Int, x, Some lo)) -> Ok (x, lo, true)
    | Some (Assign (Ident x, lo)) -> Ok (x, lo, false)
    | _ -> Error "loop initialisation is not canonical"
  in
  match var_lo with
  | Error e -> Error e
  | Ok (x, lo, declared) -> (
    let cond =
      match f.cond with
      | Some (Binary (((Blt | Ble | Bgt | Bge) as op), Ident y, bound))
        when y = x ->
        Ok (op, bound)
      | _ -> Error "loop condition is not canonical"
    in
    match cond with
    | Error e -> Error e
    | Ok (op, bound) -> (
      let step =
        match f.update with
        | Some (Op_assign (Badd, Ident y, Int_lit c)) when y = x ->
          Ok (Int64.to_int c, `Up)
        | Some (Op_assign (Bsub, Ident y, Int_lit c)) when y = x ->
          Ok (Int64.to_int c, `Down)
        | Some (Assign (Ident y, Binary (Badd, Ident y', Int_lit c)))
          when y = x && y' = x ->
          Ok (Int64.to_int c, `Up)
        | Some (Assign (Ident y, Binary (Badd, Int_lit c, Ident y')))
          when y = x && y' = x ->
          Ok (Int64.to_int c, `Up)
        | Some (Assign (Ident y, Binary (Bsub, Ident y', Int_lit c)))
          when y = x && y' = x ->
          Ok (Int64.to_int c, `Down)
        | _ -> Error "loop update is not canonical"
      in
      match step with
      | Error e -> Error e
      | Ok (c, dir) ->
        if c <= 0 then Error "loop step must be a positive constant"
        else begin
          let dir_ok =
            match (dir, op) with
            | `Up, (Blt | Ble) -> true
            | `Down, (Bgt | Bge) -> true
            | _ -> false
          in
          if not dir_ok then Error "loop direction and condition disagree"
          else
            Ok
              {
                c_var = x;
                c_declared = declared;
                c_lo = lo;
                c_op = op;
                c_bound = bound;
                c_step = c;
                c_dir = dir;
              }
        end))

(* Number of iterations, as an AST expression evaluated at the launch. *)
let trip_expr (c : canon) : expr =
  let lo = c.c_lo and b = c.c_bound in
  let step = Int_lit (Int64.of_int c.c_step) in
  let diff =
    match (c.c_dir, c.c_op) with
    | `Up, Blt -> Binary (Bsub, b, lo)
    | `Up, Ble -> Binary (Badd, Binary (Bsub, b, lo), Int_lit 1L)
    | `Down, Bgt -> Binary (Bsub, lo, b)
    | `Down, Bge -> Binary (Badd, Binary (Bsub, lo, b), Int_lit 1L)
    | _ -> assert false
  in
  (* ceil(diff / step) *)
  Binary
    (Bdiv, Binary (Badd, diff, Int_lit (Int64.of_int (c.c_step - 1))), step)

(* ------------------------------------------------------------------ *)
(* Body inspection                                                     *)

type access = {
  a_root : string;
  a_write : bool;
  a_index : expr;  (* flat element index *)
  a_elem : int;  (* element size in bytes (unused by the test, kept for
                    diagnostics) *)
  a_inner : (string * (int * int)) list;  (* inner loops in scope *)
}

type inspection = {
  mutable accesses : access list;
  mutable assigned : string list;  (* scalars written in the body *)
  mutable declared : string list;  (* names declared inside the body *)
  mutable escapes : string list;  (* arrays/pointers used outside accesses *)
  mutable rejects : string list;  (* fatal reasons *)
}


(* Variable types visible at the loop, innermost first. *)
type tyenv = (string * cty) list

let lookup_ty (env : tyenv) x = List.assoc_opt x env

let flat_index env (e : expr) : (string * expr * int) option =
  (* Resolve a memory-access expression to (root, flat index, elem size). *)
  match e with
  | Index (base, i) -> (
    match base with
    | Ident x -> (
      match lookup_ty env x with
      | Some (Arr (t, [ _ ])) -> Some (x, i, sizeof t)
      | Some (Ptr t) -> Some (x, i, sizeof t)
      | Some (Arr (_, _ :: _ :: _)) -> None  (* partial indexing *)
      | _ -> None)
    | Index (Ident x, i1) -> (
      match lookup_ty env x with
      | Some (Arr (t, [ _; d2 ])) ->
        Some
          ( x,
            Binary (Badd, Binary (Bmul, i1, Int_lit (Int64.of_int d2)), i),
            sizeof t )
      | _ -> None)
    | Index (Index (Ident x, i1), i2) -> (
      match lookup_ty env x with
      | Some (Arr (t, [ _; d2; d3 ])) ->
        let open Int64 in
        let flat =
          Binary
            ( Badd,
              Binary
                ( Badd,
                  Binary (Bmul, i1, Int_lit (of_int (d2 * d3))),
                  Binary (Bmul, i2, Int_lit (of_int d3)) ),
              i )
        in
        Some (x, flat, sizeof t)
      | _ -> None)
    | _ -> None)
  | Deref (Ident x) -> (
    match lookup_ty env x with
    | Some (Ptr t) -> Some (x, Int_lit 0L, sizeof t)
    | _ -> None)
  | Deref (Binary (Badd, Ident x, i)) -> (
    match lookup_ty env x with
    | Some (Ptr t) -> Some (x, i, sizeof t)
    | _ -> None)
  | Deref (Binary (Badd, i, Ident x)) -> (
    match lookup_ty env x with
    | Some (Ptr t) -> Some (x, i, sizeof t)
    | _ -> None)
  | Field (Index (Ident x, i), f) -> (
    (* A[i].f over an array of structures: byte-granularity index into the
       single allocation unit (the paper's allocation-unit semantics) *)
    match lookup_ty env x with
    | Some (Arr (Struct s, [ _ ])) -> (
      match List.assoc_opt f s.s_fields with
      | Some (off, _) ->
        Some
          ( x,
            Binary
              ( Badd,
                Binary (Bmul, i, Int_lit (Int64.of_int s.s_size)),
                Int_lit (Int64.of_int off) ),
            1 )
      | None -> None)
    | _ -> None)
  | _ -> None

let is_mem_ty = function Arr _ | Ptr _ -> true | _ -> false

(* Walk the loop body collecting accesses, scalar writes, declarations and
   escapes. [env] is the type environment including body-local decls seen
   so far; [inner] tracks enclosing sequential inner loops. *)
let inspect_body (outer_env : tyenv) (body : stmt list) : inspection =
  let insp =
    { accesses = []; assigned = []; declared = []; escapes = []; rejects = [] }
  in
  let reject r = insp.rejects <- r :: insp.rejects in
  let record env inner write e =
    match flat_index env e with
    | Some (root, idx, elem) ->
      insp.accesses <-
        { a_root = root; a_write = write; a_index = idx; a_elem = elem;
          a_inner = inner }
        :: insp.accesses;
      Some idx
    | None ->
      reject "memory access too complex for the dependence test";
      None
  in
  (* Expression walk: index subexpressions are rvalues; bare mentions of
     array/pointer variables outside an access escape. *)
  let rec expr_walk env inner (e : expr) =
    match e with
    | Int_lit _ | Float_lit _ | Sizeof _ -> ()
    | Ident x -> (
      match lookup_ty env x with
      | Some t when is_mem_ty t ->
        insp.escapes <-
          (if List.mem x insp.escapes then insp.escapes else x :: insp.escapes)
      | _ -> ())
    | Index _ | Deref _ | Field _ | Arrow _ -> (
      match record env inner false e with
      | Some idx -> expr_walk env inner idx
      | None -> ())
    | Addr_of inner_e -> (
      (* &x or &A[i]: the address escapes *)
      let rec root_of = function
        | Ident x -> Some x
        | Index (a, _) | Deref a | Field (a, _) | Arrow (a, _) -> root_of a
        | _ -> None
      in
      match root_of inner_e with
      | Some x ->
        insp.escapes <-
          (if List.mem x insp.escapes then insp.escapes else x :: insp.escapes)
      | None -> reject "complex address-of expression")
    | Binary (_, a, b) ->
      expr_walk env inner a;
      expr_walk env inner b
    | Unary (_, a) | Cast (_, a) -> expr_walk env inner a
    | Cond (c, a, b) ->
      expr_walk env inner c;
      expr_walk env inner a;
      expr_walk env inner b
    | Call (name, args) ->
      if not (Cgcm_ir.Ir.Intrinsic.is_pure_math name) then
        reject (Fmt.str "call to non-pure function '%s'" name);
      List.iter (expr_walk env inner) args
  in
  let rec stmt_walk env inner (s : stmt) : tyenv =
    match s with
    | Decl (t, x, init) ->
      insp.declared <- x :: insp.declared;
      Option.iter (expr_walk env inner) init;
      (x, t) :: env
    | Assign (lhs, rhs) -> begin
      expr_walk env inner rhs;
      (match lhs with
      | Ident x ->
        insp.assigned <-
          (if List.mem x insp.assigned then insp.assigned else x :: insp.assigned)
      | Index _ | Deref _ | Field _ | Arrow _ -> (
        match record env inner true lhs with
        | Some idx -> expr_walk env inner idx
        | None -> ())
      | _ -> reject "assignment to a non-lvalue");
      env
    end
    | Op_assign (_, lhs, rhs) -> begin
      expr_walk env inner rhs;
      (match lhs with
      | Ident x ->
        insp.assigned <-
          (if List.mem x insp.assigned then insp.assigned else x :: insp.assigned)
      | Index _ | Deref _ | Field _ | Arrow _ -> (
        (* read-modify-write: both a read and a write *)
        ignore (record env inner false lhs);
        match record env inner true lhs with
        | Some idx -> expr_walk env inner idx
        | None -> ())
      | _ -> reject "assignment to a non-lvalue");
      env
    end
    | If (c, t, e) ->
      expr_walk env inner c;
      ignore (List.fold_left (fun env s -> stmt_walk env inner s) env t);
      ignore (List.fold_left (fun env s -> stmt_walk env inner s) env e);
      env
    | While (c, body) ->
      expr_walk env inner c;
      ignore (List.fold_left (fun env s -> stmt_walk env inner s) env body);
      env
    | For f -> begin
      if f.parallel then reject "nested parallel loop";
      (* Recognize a constant-range inner loop to refine the test. *)
      match recognize_canon f with
      | Ok c -> begin
        insp.declared <- c.c_var :: insp.declared;
        insp.assigned <- c.c_var :: insp.assigned;
        let inner' =
          match
            (Affine.const_eval c.c_lo, Affine.const_eval c.c_bound, c.c_dir)
          with
          | Some lo, Some hi, `Up ->
            let hi_incl = if c.c_op = Ble then hi else hi - 1 in
            if hi_incl >= lo then (c.c_var, (lo, hi_incl)) :: inner else inner
          | Some lo, Some hi, `Down ->
            let hi_incl = if c.c_op = Bge then hi else hi + 1 in
            if lo >= hi_incl then (c.c_var, (hi_incl, lo)) :: inner else inner
          | _ -> inner
        in
        expr_walk env inner c.c_lo;
        expr_walk env inner c.c_bound;
        let env' = (c.c_var, Int) :: env in
        ignore
          (List.fold_left (fun env s -> stmt_walk env inner' s) env' f.body);
        env
      end
      | Error _ ->
        (* Arbitrary inner loop: record writes conservatively. *)
        Option.iter (fun s -> ignore (stmt_walk env inner s)) f.init;
        Option.iter (expr_walk env inner) f.cond;
        Option.iter (fun s -> ignore (stmt_walk env inner s)) f.update;
        ignore (List.fold_left (fun env s -> stmt_walk env inner s) env f.body);
        reject "non-canonical inner loop";
        env
    end
    | Return _ -> reject "return inside loop body"; env
    | Break -> reject "break inside loop body"; env
    | Expr_stmt e -> expr_walk env inner e; env
    | Launch_stmt _ -> reject "explicit launch inside loop body"; env
  in
  ignore (List.fold_left (fun env s -> stmt_walk env [] s) outer_env body);
  insp

(* ------------------------------------------------------------------ *)
(* The dependence test                                                 *)

let check_doall (env : tyenv) (c : canon) (body : stmt list) :
    (unit, string) result =
  let insp = inspect_body env body in
  match insp.rejects with
  | r :: _ -> Error r
  | [] ->
    (* 1. scalar writes must be iteration-private *)
    let bad_scalar =
      List.find_opt (fun x -> not (List.mem x insp.declared)) insp.assigned
    in
    (match bad_scalar with
    | Some x -> Error (Fmt.str "loop-carried scalar dependence on '%s'" x)
    | None ->
      (* 2. escaping arrays/pointers are only tolerated when nothing in the
            loop writes memory through a may-aliasing root *)
      let is_ptr_root x =
        match lookup_ty env x with
        | Some (Ptr _) -> true
        | _ -> not (List.mem x insp.declared) && lookup_ty env x = None
      in
      let may_alias r1 r2 = r1 = r2 || is_ptr_root r1 || is_ptr_root r2 in
      let written_roots =
        List.filter_map
          (fun a -> if a.a_write then Some a.a_root else None)
          insp.accesses
        |> List.sort_uniq compare
      in
      if insp.escapes <> [] && written_roots <> [] then
        Error
          (Fmt.str "address of '%s' escapes in a loop that writes memory"
             (List.hd insp.escapes))
      else begin
        (* 3. affine footprint test per written root *)
        let modified = insp.assigned in
        let form_of (a : access) =
          let aenv =
            {
              Affine.parallel_var = c.c_var;
              inner = a.a_inner;
              modified = List.filter (fun m -> m <> c.c_var) modified;
            }
          in
          Affine.of_expr aenv a.a_index
        in
        let check_root root =
          (* aliasing: any other written or read root that may alias? *)
          let conflicting =
            List.filter
              (fun a -> a.a_root <> root && may_alias a.a_root root)
              insp.accesses
          in
          if conflicting <> [] then
            Error (Fmt.str "may-alias conflict on '%s'" root)
          else begin
            let accs = List.filter (fun a -> a.a_root = root) insp.accesses in
            (* mixed granularities (element vs byte indices into the same
               unit) would make the affine footprints incomparable *)
            let elems = List.sort_uniq compare (List.map (fun a -> a.a_elem) accs) in
            if List.length elems > 1 then raise Exit;
            let writes = List.filter (fun a -> a.a_write) accs in
            let reads = List.filter (fun a -> not a.a_write) accs in
            let forms =
              List.map (fun a -> (a, form_of a)) (writes @ reads)
            in
            if List.exists (fun (_, f) -> f = None) forms then
              Error (Fmt.str "non-affine access to '%s'" root)
            else begin
              let wf =
                List.filter_map
                  (fun (a, f) -> if a.a_write then f else None)
                  forms
              in
              let rf =
                List.filter_map
                  (fun (a, f) -> if a.a_write then None else f)
                  forms
              in
              match wf with
              | [] -> Ok ()
              | first :: _ ->
                let a = first.Affine.icoeff in
                if a = 0 then
                  Error (Fmt.str "every iteration writes the same part of '%s'" root)
                else if
                  List.exists
                    (fun (f : Affine.form) ->
                      f.icoeff <> a || not (Affine.same_inv f first))
                    wf
                then Error (Fmt.str "inconsistent write pattern on '%s'" root)
                else begin
                  let wlo =
                    List.fold_left (fun m (f : Affine.form) -> min m f.lo)
                      max_int wf
                  in
                  let whi =
                    List.fold_left (fun m (f : Affine.form) -> max m f.hi)
                      min_int wf
                  in
                  if Affine.cross_iteration_overlap ~a ~w:(wlo, whi) ~r:(wlo, whi)
                  then
                    Error (Fmt.str "write footprints on '%s' overlap across iterations" root)
                  else begin
                    let bad_read =
                      List.find_opt
                        (fun (f : Affine.form) ->
                          f.icoeff <> a
                          || (not (Affine.same_inv f first))
                          || Affine.cross_iteration_overlap ~a ~w:(wlo, whi)
                               ~r:(f.lo, f.hi))
                        rf
                    in
                    match bad_read with
                    | Some _ ->
                      Error
                        (Fmt.str "cross-iteration read/write conflict on '%s'" root)
                    | None -> Ok ()
                  end
                end
            end
          end
        in
        let check_root root =
          try check_root root
          with Exit ->
            Error (Fmt.str "mixed access granularities on '%s'" root)
        in
        let rec all = function
          | [] -> Ok ()
          | root :: rest -> (
            match check_root root with Ok () -> all rest | e -> e)
        in
        all written_roots
      end)

(* ------------------------------------------------------------------ *)
(* Outlining                                                           *)

(* Free variables of the body (in first-use order) that resolve to locals
   of the enclosing function; globals are referenced directly from the
   kernel. *)
let free_locals (env : tyenv) ~(globals : (string, cty) Hashtbl.t)
    (c : canon) (body : stmt list) : (string * cty) list =
  let acc = ref [] in
  let bound = ref [ c.c_var ] in
  let see scope_bound x =
    if
      (not (List.mem x !bound))
      && (not (List.mem x scope_bound))
      && (not (Hashtbl.mem globals x))
      && (not (List.mem_assoc x !acc))
    then begin
      match lookup_ty env x with
      | Some t -> acc := !acc @ [ (x, t) ]
      | None -> ()  (* unknown: lower will report it *)
    end
  in
  let rec expr_w sb (e : expr) =
    match e with
    | Ident x -> see sb x
    | Int_lit _ | Float_lit _ | Sizeof _ -> ()
    | Binary (_, a, b) -> expr_w sb a; expr_w sb b
    | Unary (_, a) | Deref a | Addr_of a | Cast (_, a)
    | Field (a, _) | Arrow (a, _) ->
      expr_w sb a
    | Cond (x, a, b) -> expr_w sb x; expr_w sb a; expr_w sb b
    | Index (a, i) -> expr_w sb a; expr_w sb i
    | Call (_, args) -> List.iter (expr_w sb) args
  in
  let rec stmt_w sb (s : stmt) : string list =
    match s with
    | Decl (_, x, init) ->
      Option.iter (expr_w sb) init;
      x :: sb
    | Assign (l, r) | Op_assign (_, l, r) -> expr_w sb l; expr_w sb r; sb
    | If (cnd, t, e) ->
      expr_w sb cnd;
      ignore (List.fold_left stmt_w sb t);
      ignore (List.fold_left stmt_w sb e);
      sb
    | While (cnd, b) ->
      expr_w sb cnd;
      ignore (List.fold_left stmt_w sb b);
      sb
    | For f ->
      let sb' =
        match f.init with Some s -> stmt_w sb s | None -> sb
      in
      Option.iter (expr_w sb') f.cond;
      Option.iter (fun s -> ignore (stmt_w sb' s)) f.update;
      ignore (List.fold_left stmt_w sb' f.body);
      sb
    | Return e -> Option.iter (expr_w sb) e; sb
    | Break -> sb
    | Expr_stmt e -> expr_w sb e; sb
    | Launch_stmt (_, trip, args) ->
      expr_w sb trip;
      List.iter (expr_w sb) args;
      sb
  in
  ignore (List.fold_left stmt_w [] body);
  !acc

(* Kernels synthesised during a [transform] run, appended to the program. *)
let pending_kernels : func_decl list ref = ref []

(* Induction-variable reconstruction inside the kernel:
   i = lo ± tid * step, with the names passed as parameters. *)
let induction_decl (c : canon) ~(tid : expr) ~(lo : string) ~(step : string) =
  let tid_term = Binary (Bmul, tid, Ident step) in
  let value =
    match c.c_dir with
    | `Up -> Binary (Badd, Ident lo, tid_term)
    | `Down -> Binary (Bsub, Ident lo, tid_term)
  in
  Decl (Int, c.c_var, Some value)

(* When the loop body is exactly one nested independent canonical loop,
   the pair is flattened into a 2-D grid: the GPU gets trip_i * trip_j
   threads instead of trip_i (cf. the <<<blocks, threads>>> grids real
   CUDA mappings use). Sound because any two distinct (i, j) pairs either
   differ in i (outer independence) or share i and differ in j (inner
   independence). *)
let flattenable_inner (env : tyenv) (c : canon) (body : stmt list) :
    (canon * stmt list) option =
  match body with
  | [ For inner ] -> (
    match recognize_canon inner with
    | Error _ -> None
    | Ok ci ->
      (* the inner bounds must not depend on the outer variable or on
         anything the inner body modifies *)
      let insp =
        inspect_body ((ci.c_var, Int) :: (c.c_var, Int) :: env) inner.body
      in
      let varying = c.c_var :: ci.c_var :: insp.assigned in
      if
        Affine.mentions varying ci.c_lo
        || Affine.mentions varying ci.c_bound
      then None
      else if inner.parallel then Some (ci, inner.body)  (* annotated *)
      else begin
        match
          check_doall ((ci.c_var, Int) :: (c.c_var, Int) :: env) ci inner.body
        with
        | Ok () -> Some (ci, inner.body)
        | Error _ -> None
      end)
  | _ -> None

let outline ~(report : report) ~(globals : (string, cty) Hashtbl.t)
    ~(fresh : unit -> string) ~(fname : string) ~(manual : bool)
    (env : tyenv) (c : canon) (body : stmt list) ~(named_applicable : bool) :
    stmt =
  let kname = fresh () in
  let inner = flattenable_inner env c body in
  let body_for_frees =
    match inner with Some (_, ibody) -> ibody | None -> body
  in
  let frees =
    match inner with
    | Some (ci, ibody) ->
      free_locals ((ci.c_var, Int) :: env) ~globals { c with c_var = c.c_var }
        ibody
      |> List.filter (fun (x, _) -> x <> ci.c_var && x <> c.c_var)
    | None -> free_locals env ~globals c body
  in
  ignore body_for_frees;
  List.iter
    (fun (x, t) ->
      if indirection t > 2 then
        error "cannot outline loop in %s: '%s' has indirection > 2" fname x)
    frees;
  let kdecl, trip, extra_args =
    match inner with
    | None ->
      let params =
        (Int, "__tid") :: (Int, "__lo") :: (Int, "__step")
        :: List.map (fun (x, t) -> (t, x)) frees
      in
      let body' =
        induction_decl c ~tid:(Ident "__tid") ~lo:"__lo" ~step:"__step" :: body
      in
      ( { f_kernel = true; f_ret = None; f_name = kname; f_params = params;
          f_body = body' },
        trip_expr c,
        [ c.c_lo; Int_lit (Int64.of_int c.c_step) ] )
    | Some (ci, ibody) ->
      (* 2-D grid: i = tid / tj, j = tid mod tj *)
      let params =
        (Int, "__tid") :: (Int, "__lo") :: (Int, "__step")
        :: (Int, "__lo2") :: (Int, "__step2") :: (Int, "__tj")
        :: List.map (fun (x, t) -> (t, x)) frees
      in
      let outer_idx = Binary (Bdiv, Ident "__tid", Ident "__tj") in
      let inner_idx = Binary (Brem, Ident "__tid", Ident "__tj") in
      let body' =
        induction_decl c ~tid:outer_idx ~lo:"__lo" ~step:"__step"
        :: induction_decl ci ~tid:inner_idx ~lo:"__lo2" ~step:"__step2"
        :: ibody
      in
      ( { f_kernel = true; f_ret = None; f_name = kname; f_params = params;
          f_body = body' },
        Binary (Bmul, trip_expr c, trip_expr ci),
        [
          c.c_lo;
          Int_lit (Int64.of_int c.c_step);
          ci.c_lo;
          Int_lit (Int64.of_int ci.c_step);
          trip_expr ci;
        ] )
  in
  report.kernels <-
    { k_name = kname; k_func = fname; k_manual = manual;
      k_named_applicable = named_applicable }
    :: report.kernels;
  report.notes <-
    { l_func = fname; l_outcome = `Parallelized kname } :: report.notes;
  let launch_args = extra_args @ List.map (fun (x, _) -> Ident x) frees in
  pending_kernels := kdecl :: !pending_kernels;
  Launch_stmt (kname, trip, launch_args)

(* ------------------------------------------------------------------ *)
(* Program transformation                                              *)

(* With parallelization off, 'parallel' annotations are simply ignored
   (the loops stay sequential) — this is the sequential CPU baseline. *)
let rec strip_parallel_stmt (s : stmt) : stmt =
  match s with
  | For f ->
    For
      {
        f with
        parallel = false;
        init = Option.map strip_parallel_stmt f.init;
        update = Option.map strip_parallel_stmt f.update;
        body = List.map strip_parallel_stmt f.body;
      }
  | If (c, t, e) ->
    If (c, List.map strip_parallel_stmt t, List.map strip_parallel_stmt e)
  | While (c, b) -> While (c, List.map strip_parallel_stmt b)
  | s -> s

let strip_parallel (p : program) : program =
  List.map
    (function
      | Func_decl f ->
        Func_decl { f with f_body = List.map strip_parallel_stmt f.f_body }
      | d -> d)
    p

let transform ~(mode : mode) (p : program) : program * report =
  let report = { kernels = []; notes = [] } in
  if mode = Off then (strip_parallel p, report)
  else begin
    pending_kernels := [];
    let globals : (string, cty) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (function
        | Global_decl g -> Hashtbl.replace globals g.g_name g.g_ty
        | Func_decl _ | Struct_decl _ -> ())
      p;
    let counter = ref 0 in
    let transform_func (fd : func_decl) : func_decl =
      if fd.f_kernel then fd
      else begin
        let fresh () =
          incr counter;
          Fmt.str "__k_%s_%d" fd.f_name !counter
        in
        let rec stmts_walk (env : tyenv) (ss : stmt list) : stmt list =
          match ss with
          | [] -> []
          | s :: rest ->
            let s', env' = stmt_walk env s in
            s' :: stmts_walk env' rest
        and stmt_walk env (s : stmt) : stmt * tyenv =
          match s with
          | Decl (t, x, _) -> (s, (x, t) :: env)
          | For f -> begin
            let try_parallel =
              match mode with
              | Auto -> true
              | Manual_only -> f.parallel
              | Off -> false
            in
            let attempt () =
              match recognize_canon f with
              | Error e -> Error e
              | Ok c ->
                if f.parallel then Ok c
                else begin
                  match check_doall ((c.c_var, Int) :: env) c f.body with
                  | Ok () -> Ok c
                  | Error e -> Error e
                end
            in
            if not try_parallel then descend env f
            else begin
              match attempt () with
              | Ok c ->
                (* Named-regions / inspector-executor applicability: every
                   live-in must be a distinct *named* allocation unit with
                   affine indexing — pointer-typed live-ins and accesses
                   through pointer-typed globals disqualify a kernel. *)
                let no_ptr_locals =
                  List.for_all
                    (fun (_, t) ->
                      match t with Ptr _ -> false | _ -> true)
                    (free_locals ((c.c_var, Int) :: env) ~globals c f.body)
                in
                let uses_ptr_global =
                  let found = ref false in
                  let rec expr_scan (e : expr) =
                    match e with
                    | Ident x -> (
                      match Hashtbl.find_opt globals x with
                      | Some (Ptr _) -> found := true
                      | _ -> ())
                    | Int_lit _ | Float_lit _ | Sizeof _ -> ()
                    | Binary (_, a, b) -> expr_scan a; expr_scan b
                    | Unary (_, a) | Deref a | Addr_of a | Cast (_, a)
                    | Field (a, _) | Arrow (a, _) ->
                      expr_scan a
                    | Cond (x, a, b) -> expr_scan x; expr_scan a; expr_scan b
                    | Index (a, i) -> expr_scan a; expr_scan i
                    | Call (_, args) -> List.iter expr_scan args
                  in
                  let rec stmt_scan (s : stmt) =
                    match s with
                    | Decl (_, _, init) -> Option.iter expr_scan init
                    | Assign (l, r) | Op_assign (_, l, r) ->
                      expr_scan l; expr_scan r
                    | If (cnd, t, e) ->
                      expr_scan cnd;
                      List.iter stmt_scan t;
                      List.iter stmt_scan e
                    | While (cnd, b) -> expr_scan cnd; List.iter stmt_scan b
                    | For fo ->
                      Option.iter stmt_scan fo.init;
                      Option.iter expr_scan fo.cond;
                      Option.iter stmt_scan fo.update;
                      List.iter stmt_scan fo.body
                    | Return e -> Option.iter expr_scan e
                    | Break -> ()
                    | Expr_stmt e -> expr_scan e
                    | Launch_stmt (_, t, args) ->
                      expr_scan t;
                      List.iter expr_scan args
                  in
                  List.iter stmt_scan f.body;
                  !found
                in
                let named_applicable = no_ptr_locals && not uses_ptr_global in
                let launch =
                  outline ~report ~globals ~fresh ~fname:fd.f_name
                    ~manual:f.parallel
                    ((c.c_var, Int) :: env)
                    c f.body ~named_applicable
                in
                (launch, env)
              | Error reason ->
                if f.parallel then
                  error "%s: 'parallel' loop cannot be outlined: %s" fd.f_name
                    reason;
                report.notes <-
                  { l_func = fd.f_name; l_outcome = `Rejected reason }
                  :: report.notes;
                descend env f
            end
          end
          | If (c, t, e) -> (If (c, stmts_walk env t, stmts_walk env e), env)
          | While (c, b) -> (While (c, stmts_walk env b), env)
          | _ -> (s, env)
        and descend env (f : for_info) : stmt * tyenv =
          (* keep the loop sequential but look for inner candidates *)
          let env' =
            match f.init with
            | Some (Decl (t, x, _)) -> (x, t) :: env
            | _ -> env
          in
          (For { f with body = stmts_walk env' f.body }, env)
        in
        (* globals sit at the bottom of the type environment *)
        let global_env =
          Hashtbl.fold (fun x t acc -> (x, t) :: acc) globals []
        in
        let param_env =
          List.map (fun (t, x) -> (x, t)) fd.f_params @ global_env
        in
        { fd with f_body = stmts_walk param_env fd.f_body }
      end
    in
    let p' =
      List.map
        (function
          | Global_decl g -> Global_decl g
          | Struct_decl s -> Struct_decl s
          | Func_decl fd -> Func_decl (transform_func fd))
        p
    in
    let kernels = List.rev_map (fun k -> Func_decl k) !pending_kernels in
    (p' @ kernels, report)
  end
