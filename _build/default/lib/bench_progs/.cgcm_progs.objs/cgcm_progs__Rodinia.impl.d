lib/bench_progs/rodinia.ml: Template
