lib/bench_progs/template.ml: Buffer List String
