lib/bench_progs/others.ml: Template
