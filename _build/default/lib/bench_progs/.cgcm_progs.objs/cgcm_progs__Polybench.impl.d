lib/bench_progs/polybench.ml: Template
