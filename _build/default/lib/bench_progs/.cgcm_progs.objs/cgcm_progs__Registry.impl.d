lib/bench_progs/registry.ml: List Others Polybench Rodinia
