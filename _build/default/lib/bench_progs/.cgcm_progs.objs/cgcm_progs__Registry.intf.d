lib/bench_progs/registry.mli:
