(* Tiny template engine for the benchmark sources: replaces "@NAME"
   placeholders with integer values. Longest names are substituted first
   so "@NSTEPS" is never corrupted by "@N". *)

let subst (pairs : (string * int) list) (template : string) : string =
  let pairs =
    List.sort
      (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
      pairs
  in
  let replace_all ~key ~value s =
    let klen = String.length key in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if
        !i + klen <= n
        && String.sub s !i klen = key
        && ((not (!i + klen < n))
           ||
           let c = s.[!i + klen] in
           not ((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')))
      then begin
        Buffer.add_string buf (string_of_int value);
        i := !i + klen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  List.fold_left
    (fun acc (key, value) -> replace_all ~key:("@" ^ key) ~value acc)
    template pairs
