(* The StreamIt (fm) and PARSEC (blackscholes) programs of Section 6.2. *)

let subst = Template.subst

(* FM radio software pipeline: small FIR / equalizer kernels plus a
   dominant sequential demodulation loop (a phase recurrence). The DOALL
   parallelizer finds the small kernels but the program stays CPU-bound,
   matching the paper's ~0% GPU time for fm. *)
let fm ?(samples = 16384) ?(taps = 8) () =
  subst [ ("S", samples); ("T", taps) ]
    {|// StreamIt fm
global float input[@S];
global float fir_out[@S];
global float demod[@S];
global float eq_out[@S];
global float taps_lp[@T];
global float taps_eq[@T];

void init_taps() {
  for (int i = 0; i < @T; i++) {
    taps_lp[i] = 1.0 / (i + 1.0);
    taps_eq[i] = 0.5 / (i + 2.0);
  }
}

void init_input() {
  for (int i = 0; i < @S; i++) {
    input[i] = sin(i * 0.01) + 0.3 * sin(i * 0.07);
  }
}

void fir_filter() {
  // decimating low-pass FIR: one output per four input samples
  for (int i = 0; i < (@S - @T) / 4; i++) {
    float acc = 0.0;
    for (int j = 0; j < @T; j++) {
      acc = acc + input[i * 4 + j] * taps_lp[j];
    }
    fir_out[i] = acc;
  }
}

void equalize() {
  for (int i = 0; i < @S / 4 - @T; i++) {
    float acc = 0.0;
    for (int j = 0; j < @T; j++) {
      acc = acc + demod[i + j] * taps_eq[j];
    }
    eq_out[i] = acc;
  }
}

int main() {
  init_taps();
  init_input();
  fir_filter();
  // FM demodulation with carrier tracking: a sequential recurrence over
  // the sample stream — the dominant (CPU-only) stage of the pipeline.
  float phase = 0.0;
  float carrier = 0.0;
  float freq = 0.05;
  for (int i = 1; i < @S / 4; i++) {
    float d = fir_out[i] * fir_out[i - 1];
    // phase-locked loop: track the carrier, then discriminate
    carrier = carrier + freq + 0.002 * phase;
    float ref = sin(carrier);
    float err = d * ref - phase * 0.01;
    phase = 0.9 * phase + 0.1 * err;
    float gain = 1.0 / (1.0 + fabs(phase));
    demod[i] = phase * 2.5 * gain + 0.05 * cos(carrier * 0.5);
  }
  equalize();
  float sum = 0.0;
  for (int i = 0; i < @S / 4 - @T; i++) {
    sum = sum + eq_out[i];
  }
  print(sum);
  return 0;
}
|}

(* Black-Scholes option pricing: a single GPU kernel over the options
   plus sequential generation and aggregation on the CPU. *)
let blackscholes ?(options = 3000) () =
  subst [ ("O", options) ]
    {|// PARSEC blackscholes
global float sptprice[@O];
global float strike[@O];
global float rate[@O];
global float volatility[@O];
global float otime[@O];
global float otype[@O];
global float prices[@O];

void price_options() {
  for (int i = 0; i < @O; i++) {
    float s = sptprice[i];
    float k = strike[i];
    float r = rate[i];
    float v = volatility[i];
    float t = otime[i];
    float sqrt_t = sqrt(t);
    float d1 = (log(s / k) + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    // cumulative normal distribution (Abramowitz-Stegun polynomial)
    float x1 = d1;
    if (x1 < 0.0) { x1 = -x1; }
    float k1 = 1.0 / (1.0 + 0.2316419 * x1);
    float w1 = 1.0 - 0.39894228 * exp(-0.5 * x1 * x1)
      * k1 * (0.31938153 + k1 * (-0.356563782 + k1 * (1.781477937 + k1 * (-1.821255978 + k1 * 1.330274429))));
    if (d1 < 0.0) { w1 = 1.0 - w1; }
    float x2 = d2;
    if (x2 < 0.0) { x2 = -x2; }
    float k2 = 1.0 / (1.0 + 0.2316419 * x2);
    float w2 = 1.0 - 0.39894228 * exp(-0.5 * x2 * x2)
      * k2 * (0.31938153 + k2 * (-0.356563782 + k2 * (1.781477937 + k2 * (-1.821255978 + k2 * 1.330274429))));
    if (d2 < 0.0) { w2 = 1.0 - w2; }
    float call = s * w1 - k * exp(-r * t) * w2;
    if (otype[i] > 0.5) {
      prices[i] = call;
    } else {
      prices[i] = call + k * exp(-r * t) - s;  // put-call parity
    }
  }
}

int main() {
  // sequential option generation with a linear congruential generator
  int seed = 123456789;
  for (int i = 0; i < @O; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    sptprice[i] = 20.0 + (seed % 1000) * 0.08;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    strike[i] = 20.0 + (seed % 1000) * 0.09;
    rate[i] = 0.02 + (i % 5) * 0.002;
    volatility[i] = 0.2 + (i % 7) * 0.01;
    otime[i] = 0.5 + (i % 9) * 0.1;
    otype[i] = (i % 2) * 1.0;
  }
  price_options();
  float sum = 0.0;
  for (int i = 0; i < @O; i++) {
    sum = sum + prices[i];
  }
  print(sum);
  return 0;
}
|}
