(** The 24-program suite of Section 6, with the paper's per-program
    metadata for side-by-side reporting. *)

type limiting = Gpu | Comm | Other

type program = {
  name : string;
  suite : string;  (** PolyBench | Rodinia | StreamIt | PARSEC *)
  source : string;  (** CGC source text at the default (scaled) size *)
  paper_limiting : limiting;  (** Table 3's limiting factor *)
  paper_kernels : int;  (** Table 3's kernel count *)
}

val limiting_to_string : limiting -> string

val all : program list
(** All 24 programs, in the paper's Table 3 order. *)

val find : string -> program option
