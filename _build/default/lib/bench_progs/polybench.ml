(* CGC ports of the 16 PolyBench programs evaluated in the paper
   (Section 6.2). The algorithms and loop structures follow the PolyBench
   C sources; array sizes are scaled so that the whole suite simulates in
   seconds. As in PolyBench, data lives in global arrays and
   initialisation is by closed-form formulas, so runs are deterministic.

   Each program ends with a sequential checksum over its outputs; the
   differential tests compare this output across all execution modes. *)

let subst = Template.subst

(* C = alpha*A*B + beta*C *)
let gemm ?(n = 56) () =
  subst [ ("N", n) ]
    {|// PolyBench gemm
global float A[@N][@N];
global float B[@N][@N];
global float C[@N][@N];

void init_a() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = (i * j % 7 + 1) * 0.125;
    }
  }
}

void init_b() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      B[i][j] = (i * (j + 1) % 9 + 1) * 0.0625;
    }
  }
}

void init_c() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      C[i][j] = (i * (j + 2) % 5 + 1) * 0.25;
    }
  }
}

void kernel_gemm(float alpha, float beta) {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = 0.0;
      for (int k = 0; k < @N; k++) {
        acc = acc + A[i][k] * B[k][j];
      }
      C[i][j] = beta * C[i][j] + alpha * acc;
    }
  }
}

int main() {
  init_a();
  init_b();
  init_c();
  kernel_gemm(1.5, 1.2);
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + C[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* D := A*B, E := C*D  (paper's 2mm, simplified alpha/beta) *)
let twomm ?(n = 44) () =
  subst [ ("N", n) ]
    {|// PolyBench 2mm
global float A[@N][@N];
global float B[@N][@N];
global float C[@N][@N];
global float D[@N][@N];
global float E[@N][@N];

void init_a() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = (i * j % 7 + 1) * 0.125;
    }
  }
}

void init_b() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      B[i][j] = (i + j) % 5 * 0.0625;
    }
  }
}

void init_c() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      C[i][j] = ((i - j) % 3 + 3) * 0.25;
    }
  }
}

void init_de() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      D[i][j] = 0.0;
      E[i][j] = 0.0;
    }
  }
}

void mm1(float alpha) {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = 0.0;
      for (int k = 0; k < @N; k++) {
        acc = acc + A[i][k] * B[k][j];
      }
      D[i][j] = alpha * acc;
    }
  }
}

void mm2() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = 0.0;
      for (int k = 0; k < @N; k++) {
        acc = acc + C[i][k] * D[k][j];
      }
      E[i][j] = acc;
    }
  }
}

int main() {
  init_a();
  init_b();
  init_c();
  init_de();
  mm1(1.5);
  mm2();
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + E[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* E := A*B, F := C*D, G := E*F *)
let threemm ?(n = 40) () =
  subst [ ("N", n) ]
    {|// PolyBench 3mm
global float A[@N][@N];
global float B[@N][@N];
global float C[@N][@N];
global float D[@N][@N];
global float E[@N][@N];
global float F[@N][@N];
global float G[@N][@N];

void init_ab() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = (i * j % 7 + 1) * 0.125;
      B[i][j] = (i + j) % 5 * 0.0625;
    }
  }
}

void init_cd() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      C[i][j] = ((i - j) % 3 + 3) * 0.25;
      D[i][j] = (i % 4 + j % 3 + 1) * 0.1;
    }
  }
}

void zero_out() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      E[i][j] = 0.0;
      F[i][j] = 0.0;
      G[i][j] = 0.0;
    }
  }
}

void mm_e(float acc0) {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = acc0;
      for (int k = 0; k < @N; k++) {
        acc = acc + A[i][k] * B[k][j];
      }
      E[i][j] = acc;
    }
  }
}

void mm_f(float acc0) {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = acc0;
      for (int k = 0; k < @N; k++) {
        acc = acc + C[i][k] * D[k][j];
      }
      F[i][j] = acc;
    }
  }
}

void mm_g(float acc0) {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float acc = acc0;
      for (int k = 0; k < @N; k++) {
        acc = acc + E[i][k] * F[k][j];
      }
      G[i][j] = acc;
    }
  }
}

int main() {
  init_ab();
  init_cd();
  zero_out();
  mm_e(0.0);
  mm_f(0.0);
  mm_g(0.0);
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + G[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* y = A^T (A x) *)
let atax ?(n = 96) () =
  subst [ ("N", n) ]
    {|// PolyBench atax
global float A[@N][@N];
global float x[@N];
global float y[@N];
global float tmp[@N];

void init() {
  for (int i = 0; i < @N; i++) {
    x[i] = 1.0 + i * 0.003;
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i + j) % 11 + 1) * 0.01;
    }
  }
}

void kernel_atax() {
  for (int i = 0; i < @N; i++) {
    float acc = 0.0;
    for (int j = 0; j < @N; j++) {
      acc = acc + A[i][j] * x[j];
    }
    tmp[i] = acc;
  }
  for (int j = 0; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      acc = acc + A[i][j] * tmp[i];
    }
    y[j] = acc;
  }
}

int main() {
  init();
  kernel_atax();
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    sum = sum + y[i];
  }
  print(sum);
  return 0;
}
|}

(* s = A^T r ; q = A p *)
let bicg ?(n = 96) () =
  subst [ ("N", n) ]
    {|// PolyBench bicg
global float A[@N][@N];
global float r[@N];
global float s[@N];
global float pvec[@N];
global float q[@N];

void init() {
  for (int i = 0; i < @N; i++) {
    r[i] = i * 0.007;
    pvec[i] = i * 0.0055;
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i * j) % 13 + 1) * 0.004;
    }
  }
}

void kernel_bicg() {
  for (int j = 0; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      acc = acc + A[i][j] * r[i];
    }
    s[j] = acc;
  }
  for (int i = 0; i < @N; i++) {
    float acc = 0.0;
    for (int j = 0; j < @N; j++) {
      acc = acc + A[i][j] * pvec[j];
    }
    q[i] = acc;
  }
}

int main() {
  init();
  kernel_bicg();
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    sum = sum + s[i] + q[i];
  }
  print(sum);
  return 0;
}
|}

(* A += u1 v1^T + u2 v2^T ; x = beta A^T y + z ; w = alpha A x *)
let gemver ?(n = 88) () =
  subst [ ("N", n) ]
    {|// PolyBench gemver
global float A[@N][@N];
global float u1[@N];
global float v1[@N];
global float u2[@N];
global float v2[@N];
global float w[@N];
global float x[@N];
global float y[@N];
global float z[@N];

void init() {
  for (int i = 0; i < @N; i++) {
    u1[i] = i * 0.01;
    u2[i] = (i + 1) * 0.005;
    v1[i] = (i + 2) * 0.004;
    v2[i] = (i + 3) * 0.002;
    y[i] = (i % 9) * 0.11;
    z[i] = (i % 7) * 0.13;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < @N; j++) {
      A[i][j] = (i * j % 17 + 1) * 0.003;
    }
  }
}

void rank_updates() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
}

void compute_x(float beta) {
  for (int i = 0; i < @N; i++) {
    float acc = 0.0;
    for (int j = 0; j < @N; j++) {
      acc = acc + A[j][i] * y[j];
    }
    x[i] = beta * acc + z[i];
  }
}

void compute_w(float alpha) {
  for (int i = 0; i < @N; i++) {
    float acc = 0.0;
    for (int j = 0; j < @N; j++) {
      acc = acc + A[i][j] * x[j];
    }
    w[i] = alpha * acc;
  }
}

int main() {
  init();
  rank_updates();
  compute_x(1.2);
  compute_w(1.5);
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    sum = sum + w[i] + x[i];
  }
  print(sum);
  return 0;
}
|}

(* y = alpha A x + beta B x *)
let gesummv ?(n = 88) () =
  subst [ ("N", n) ]
    {|// PolyBench gesummv
global float A[@N][@N];
global float B[@N][@N];
global float x[@N];
global float y[@N];

void init() {
  for (int i = 0; i < @N; i++) {
    x[i] = (i % 31) * 0.02;
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i + j) % 21 + 1) * 0.002;
      B[i][j] = ((i * 2 + j) % 19 + 1) * 0.003;
    }
  }
}

void kernel_gesummv(float alpha, float beta) {
  for (int i = 0; i < @N; i++) {
    float a = 0.0;
    float b = 0.0;
    for (int j = 0; j < @N; j++) {
      a = a + A[i][j] * x[j];
      b = b + B[i][j] * x[j];
    }
    y[i] = alpha * a + beta * b;
  }
}

int main() {
  init();
  kernel_gesummv(1.3, 1.1);
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    sum = sum + y[i];
  }
  print(sum);
  return 0;
}
|}

(* correlation matrix *)
let correlation ?(n = 44) () =
  subst [ ("N", n) ]
    {|// PolyBench correlation
global float data[@N][@N];
global float mean[@N];
global float stddev[@N];
global float corr[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      data[i][j] = ((i * j) % 23 + i % 5 + 1) * 0.04;
    }
  }
}

void compute_mean() {
  for (int j = 0; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      acc = acc + data[i][j];
    }
    mean[j] = acc / @N.0;
  }
}

void compute_stddev() {
  for (int j = 0; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      float d = data[i][j] - mean[j];
      acc = acc + d * d;
    }
    float v = acc / @N.0;
    float sd = sqrt(v);
    if (sd < 0.005) { sd = 1.0; }
    stddev[j] = sd;
  }
}

void normalize() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      data[i][j] = (data[i][j] - mean[j]) / (sqrt(@N.0) * stddev[j]);
    }
  }
}

void compute_corr() {
  parallel for (int i = 0; i < @N; i++) {
    corr[i][i] = 1.0;
    for (int j = i + 1; j < @N; j++) {
      float acc = 0.0;
      for (int k = 0; k < @N; k++) {
        acc = acc + data[k][i] * data[k][j];
      }
      corr[i][j] = acc;
      corr[j][i] = acc;
    }
  }
}

int main() {
  init();
  compute_mean();
  compute_stddev();
  normalize();
  compute_corr();
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + corr[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* covariance matrix *)
let covariance ?(n = 44) () =
  subst [ ("N", n) ]
    {|// PolyBench covariance
global float data[@N][@N];
global float mean[@N];
global float cov[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      data[i][j] = ((i + j * 3) % 19 + 1) * 0.05;
    }
  }
}

void compute_mean() {
  for (int j = 0; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      acc = acc + data[i][j];
    }
    mean[j] = acc / @N.0;
  }
}

void center() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      data[i][j] = data[i][j] - mean[j];
    }
  }
}

void compute_cov() {
  parallel for (int i = 0; i < @N; i++) {
    for (int j = i; j < @N; j++) {
      float acc = 0.0;
      for (int k = 0; k < @N; k++) {
        acc = acc + data[k][i] * data[k][j];
      }
      acc = acc / (@N.0 - 1.0);
      cov[i][j] = acc;
      cov[j][i] = acc;
    }
  }
}

int main() {
  init();
  compute_mean();
  center();
  compute_cov();
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + cov[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* 3D tensor contraction: sum[r][q][p] = sum_s A[r][q][s] * C4[s][p] *)
let doitgen ?(n = 20) () =
  subst [ ("N", n) ]
    {|// PolyBench doitgen
global float A[@N][@N][@N];
global float C4[@N][@N];
global float S[@N][@N][@N];

void init() {
  for (int r = 0; r < @N; r++) {
    for (int q = 0; q < @N; q++) {
      for (int s = 0; s < @N; s++) {
        A[r][q][s] = ((r * q + s) % 11 + 1) * 0.03;
      }
    }
  }
  for (int s = 0; s < @N; s++) {
    for (int pp = 0; pp < @N; pp++) {
      C4[s][pp] = ((s * pp) % 7 + 1) * 0.02;
    }
  }
}

void kernel_doitgen() {
  for (int r = 0; r < @N; r++) {
    for (int q = 0; q < @N; q++) {
      for (int pp = 0; pp < @N; pp++) {
        float acc = 0.0;
        for (int s = 0; s < @N; s++) {
          acc = acc + A[r][q][s] * C4[s][pp];
        }
        S[r][q][pp] = acc;
      }
    }
  }
  for (int r = 0; r < @N; r++) {
    for (int q = 0; q < @N; q++) {
      for (int pp = 0; pp < @N; pp++) {
        A[r][q][pp] = S[r][q][pp];
      }
    }
  }
}

int main() {
  init();
  kernel_doitgen();
  float sum = 0.0;
  for (int r = 0; r < @N; r++) {
    for (int q = 0; q < @N; q++) {
      for (int pp = 0; pp < @N; pp++) {
        sum = sum + A[r][q][pp];
      }
    }
  }
  print(sum);
  return 0;
}
|}

(* Gram-Schmidt orthogonalisation. The per-column norm is a sequential
   CPU reduction between kernels: this is the program where cyclic
   communication is unavoidable for CGCM and the idealized inspector-
   executor wins (Section 6.3). *)
let gramschmidt ?(n = 36) () =
  subst [ ("N", n) ]
    {|// PolyBench gramschmidt
global float A[@N][@N];
global float R[@N][@N];
global float Q[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i * j) % 13 + 2) * 0.06;
      Q[i][j] = 0.0;
      R[i][j] = 0.0;
    }
  }
}

void normalize_col(int k, float nrm) {
  parallel for (int i = 0; i < @N; i++) {
    Q[i][k] = A[i][k] / nrm;
  }
}

void update_cols(int k) {
  parallel for (int j = k + 1; j < @N; j++) {
    float acc = 0.0;
    for (int i = 0; i < @N; i++) {
      acc = acc + Q[i][k] * A[i][j];
    }
    R[k][j] = acc;
    for (int i = 0; i < @N; i++) {
      A[i][j] = A[i][j] - Q[i][k] * acc;
    }
  }
}

int main() {
  init();
  for (int k = 0; k < @N; k++) {
    float nrm = 0.0;
    for (int i = 0; i < @N; i++) {
      nrm = nrm + A[i][k] * A[i][k];
    }
    R[k][k] = sqrt(nrm);
    normalize_col(k, R[k][k]);
    update_cols(k);
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + Q[i][j] + R[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* 2D Jacobi stencil with a time loop *)
let jacobi_2d ?(n = 56) ?(steps = 20) () =
  subst [ ("N", n); ("STEPS", steps) ]
    {|// PolyBench jacobi-2d-imper
global float A[@N][@N];
global float B[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = (i * (j + 2) % 17 + 2) * 0.03;
      B[i][j] = 0.0;
    }
  }
}

void step_ab() {
  for (int i = 1; i < @N - 1; i++) {
    for (int j = 1; j < @N - 1; j++) {
      B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
    }
  }
}

void step_ba() {
  for (int i = 1; i < @N - 1; i++) {
    for (int j = 1; j < @N - 1; j++) {
      A[i][j] = B[i][j];
    }
  }
}

int main() {
  init();
  for (int t = 0; t < @STEPS; t++) {
    step_ab();
    step_ba();
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + A[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* Gauss-Seidel: both sweep directions carry dependences, so only the
   initialisation parallelizes (the paper reports a single kernel). *)
let seidel ?(n = 56) ?(steps = 10) () =
  subst [ ("N", n); ("STEPS", steps) ]
    {|// PolyBench seidel
global float A[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i + j) % 15 + 2) * 0.04;
    }
  }
}

int main() {
  init();
  for (int t = 0; t < @STEPS; t++) {
    for (int i = 1; i < @N - 1; i++) {
      for (int j = 1; j < @N - 1; j++) {
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                   + A[i][j - 1] + A[i][j] + A[i][j + 1]
                   + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
      }
    }
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + A[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* LU decomposition (no pivoting). The update loops are DOALL over rows /
   columns below the pivot, but the footprints interleave, which defeats
   the simple dependence test — the paper's parallelizer handles these, so
   we annotate them (manual parallelization + automatic communication). *)
let lu ?(n = 44) () =
  subst [ ("N", n) ]
    {|// PolyBench lu
global float A[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i * j) % 9 + 2) * 0.08;
      if (i == j) { A[i][j] = A[i][j] + @N.0; }
    }
  }
}

void scale_col(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    A[i][k] = A[i][k] / A[k][k];
  }
}

void update_block(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    parallel for (int j = k + 1; j < @N; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}

int main() {
  init();
  for (int k = 0; k < @N - 1; k++) {
    scale_col(k);
    update_block(k);
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + A[i][j];
    }
  }
  print(sum);
  return 0;
}
|}

(* LU decomposition + forward/backward substitution *)
let ludcmp ?(n = 44) () =
  subst [ ("N", n) ]
    {|// PolyBench ludcmp
global float A[@N][@N];
global float bvec[@N];
global float yvec[@N];
global float xvec[@N];

void init_vectors() {
  for (int i = 0; i < @N; i++) {
    bvec[i] = (i % 13 + 1) * 0.3;
    yvec[i] = 0.0;
    xvec[i] = 0.0;
  }
}

void init_matrix() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      A[i][j] = ((i + j * 2) % 11 + 2) * 0.07;
      if (i == j) { A[i][j] = A[i][j] + @N.0; }
    }
  }
}

void scale_col(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    A[i][k] = A[i][k] / A[k][k];
  }
}

void update_block(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    parallel for (int j = k + 1; j < @N; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}

int main() {
  init_vectors();
  init_matrix();
  for (int k = 0; k < @N - 1; k++) {
    scale_col(k);
    update_block(k);
  }
  // forward substitution (sequential recurrence, stays on the CPU)
  for (int i = 0; i < @N; i++) {
    float acc = bvec[i];
    for (int j = 0; j < i; j++) {
      acc = acc - A[i][j] * yvec[j];
    }
    yvec[i] = acc;
  }
  // backward substitution
  for (int i = @N - 1; i >= 0; i--) {
    float acc = yvec[i];
    for (int j = i + 1; j < @N; j++) {
      acc = acc - A[i][j] * xvec[j];
    }
    xvec[i] = acc / A[i][i];
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    sum = sum + xvec[i];
  }
  print(sum);
  return 0;
}
|}

(* Alternating-direction implicit: row sweeps are auto-DOALL (recurrences
   stay within a row), column sweeps interleave and need annotations. *)
let adi ?(n = 40) ?(steps = 10) () =
  subst [ ("N", n); ("STEPS", steps) ]
    {|// PolyBench adi
global float X[@N][@N];
global float A[@N][@N];
global float B[@N][@N];

void init() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      X[i][j] = ((i + j % 5) % 9 + 1) * 0.07;
      A[i][j] = ((i * 2 + j) % 7 + 2) * 0.03;
      B[i][j] = 1.0 + ((i + j) % 3) * 0.05;
    }
  }
}

void row_forward() {
  for (int i = 0; i < @N; i++) {
    for (int j = 1; j < @N; j++) {
      X[i][j] = X[i][j] - X[i][j - 1] * A[i][j] / B[i][j - 1];
      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j - 1];
    }
  }
}

void row_backward() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N - 2; j++) {
      int jj = @N - 2 - j;
      X[i][jj] = (X[i][jj] - X[i][jj - 1] * A[i][jj - 1]) / B[i][jj - 1];
    }
  }
}

void col_forward() {
  parallel for (int j = 0; j < @N; j++) {
    for (int i = 1; i < @N; i++) {
      X[i][j] = X[i][j] - X[i - 1][j] * A[i][j] / B[i - 1][j];
      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i - 1][j];
    }
  }
}

void col_backward() {
  parallel for (int j = 0; j < @N; j++) {
    for (int i = 0; i < @N - 2; i++) {
      int ii = @N - 2 - i;
      X[ii][j] = (X[ii][j] - X[ii - 1][j] * A[ii - 1][j]) / B[ii - 1][j];
    }
  }
}

void scale_last() {
  for (int i = 0; i < @N; i++) {
    X[i][@N - 1] = X[i][@N - 1] / B[i][@N - 1];
  }
}

int main() {
  init();
  for (int t = 0; t < @STEPS; t++) {
    row_forward();
    scale_last();
    row_backward();
    col_forward();
    col_backward();
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + X[i][j];
    }
  }
  print(sum);
  return 0;
}
|}
