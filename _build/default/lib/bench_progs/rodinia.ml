(* CGC ports of the six Rodinia programs the paper's DOALL parallelizer
   handles (Section 6.2). Unlike the PolyBench ports these use heap
   arrays reached through global pointers — kernels then see *double*
   pointers, exercising the run-time's mapArray/unmapArray path — and
   several loops carry 'parallel' annotations where the simple dependence
   test is defeated by pointer aliasing (the paper's manual-
   parallelization-plus-automatic-communication scenario). The named-
   regions and inspector-executor baselines are inapplicable to most of
   these kernels, as in Table 3. *)

let subst = Template.subst

(* 2D transient thermal simulation (hotspot). Two kernels in a time
   loop; dramatic slowdown without map promotion. *)
let hotspot ?(n = 48) ?(steps = 20) () =
  subst [ ("N", n); ("STEPS", steps) ]
    {|// Rodinia hotspot
global float* temp;
global float* power;
global float* temp_out;

void init() {
  parallel for (int i = 0; i < @N * @N; i++) {
    temp[i] = 324.0 + (i % 17) * 0.25;
    power[i] = 0.001 + (i % 13) * 0.0005;
    temp_out[i] = 0.0;
  }
}

void step() {
  parallel for (int i = 1; i < @N - 1; i++) {
    parallel for (int j = 1; j < @N - 1; j++) {
      int c = i * @N + j;
      float tc = temp[c];
      float tn = temp[c - @N];
      float ts = temp[c + @N];
      float tw = temp[c - 1];
      float te = temp[c + 1];
      float delta = 0.15 * (power[c] + 0.1 * (tn + ts - 2.0 * tc)
                    + 0.1 * (te + tw - 2.0 * tc) + 0.05 * (80.0 - tc));
      temp_out[c] = tc + delta;
    }
  }
}

void commit() {
  parallel for (int i = 1; i < @N - 1; i++) {
    parallel for (int j = 1; j < @N - 1; j++) {
      int c = i * @N + j;
      temp[c] = temp_out[c];
    }
  }
}

int main() {
  temp = (float*) malloc(@N * @N * sizeof(float));
  power = (float*) malloc(@N * @N * sizeof(float));
  temp_out = (float*) malloc(@N * @N * sizeof(float));
  init();
  for (int t = 0; t < @STEPS; t++) {
    step();
    commit();
  }
  float sum = 0.0;
  for (int i = 0; i < @N * @N; i++) {
    sum = sum + temp[i];
  }
  print(sum);
  return 0;
}
|}

(* Speckle-reducing anisotropic diffusion (srad). The per-iteration
   q0sqr update is a tiny straight-line CPU region between launches — the
   glue-kernel optimization lowers it to the GPU so map promotion can
   hoist everything out of the time loop. Without optimization this is
   one of the paper's worst slowdowns (4,437x). *)
let srad ?(n = 40) ?(steps = 24) () =
  subst [ ("N", n); ("STEPS", steps) ]
    {|// Rodinia srad
global float* img;
global float* dN;
global float* dS;
global float* dW;
global float* dE;
global float* cc;
global float q0sqr[1];

void extract_img() {
  parallel for (int i = 0; i < @N * @N; i++) {
    float v = (i % 29 + 1) * 0.11;
    img[i] = exp(v * 0.05);
  }
}

void reduce_directions() {
  parallel for (int i = 0; i < @N * @N; i++) {
    dN[i] = 0.0;
    dS[i] = 0.0;
    dW[i] = 0.0;
    dE[i] = 0.0;
    cc[i] = 0.0;
  }
}

void compress_img() {
  parallel for (int i = 0; i < @N * @N; i++) {
    img[i] = log(img[i]) * 20.0;
  }
}

int main() {
  img = (float*) malloc(@N * @N * sizeof(float));
  dN = (float*) malloc(@N * @N * sizeof(float));
  dS = (float*) malloc(@N * @N * sizeof(float));
  dW = (float*) malloc(@N * @N * sizeof(float));
  dE = (float*) malloc(@N * @N * sizeof(float));
  cc = (float*) malloc(@N * @N * sizeof(float));
  extract_img();
  reduce_directions();
  q0sqr[0] = 0.05;
  float lambda = 0.5;
  for (int t = 0; t < @STEPS; t++) {
    // diffusion coefficients
    parallel for (int i = 1; i < @N - 1; i++) {
      parallel for (int j = 1; j < @N - 1; j++) {
        int k = i * @N + j;
        float jc = img[k];
        dN[k] = img[k - @N] - jc;
        dS[k] = img[k + @N] - jc;
        dW[k] = img[k - 1] - jc;
        dE[k] = img[k + 1] - jc;
        float g2 = (dN[k] * dN[k] + dS[k] * dS[k] + dW[k] * dW[k] + dE[k] * dE[k]) / (jc * jc);
        float l = (dN[k] + dS[k] + dW[k] + dE[k]) / jc;
        float num = 0.5 * g2 - 0.0625 * l * l;
        float den = 1.0 + 0.25 * l;
        float qsqr = num / (den * den);
        den = (qsqr - q0sqr[0]) / (q0sqr[0] * (1.0 + q0sqr[0]));
        float c = 1.0 / (1.0 + den);
        if (c < 0.0) { c = 0.0; }
        if (c > 1.0) { c = 1.0; }
        cc[k] = c;
      }
    }
    // tiny straight-line CPU update between the two launches: the glue
    // kernel optimization lowers it onto the GPU
    q0sqr[0] = q0sqr[0] * 0.96;
    // image update
    parallel for (int i = 1; i < @N - 1; i++) {
      parallel for (int j = 1; j < @N - 1; j++) {
        int k = i * @N + j;
        float cN = cc[k];
        float cS = cc[k + @N];
        float cW = cc[k];
        float cE = cc[k + 1];
        float d = cN * dN[k] + cS * dS[k] + cW * dW[k] + cE * dE[k];
        img[k] = img[k] + 0.25 * lambda * d;
      }
    }
  }
  compress_img();
  float sum = 0.0;
  for (int i = 0; i < @N * @N; i++) {
    sum = sum + img[i];
  }
  print(sum);
  return 0;
}
|}

(* Needleman-Wunsch sequence alignment: anti-diagonal wavefronts, one
   small launch per diagonal — over a thousand launches, which is why the
   unoptimized slowdown is so large (1,126x in the paper). *)
let nw ?(n = 64) () =
  subst [ ("N", n) ]
    {|// Rodinia nw
global int F[@N][@N];
global int ref[@N][@N];

void init_ref() {
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      ref[i][j] = (i * 7 + j * 3) % 10 - 4;
    }
  }
}

void init_left_border() {
  for (int i = 0; i < @N; i++) {
    F[i][0] = -i;
  }
}

void init_top_border() {
  parallel for (int i = 0; i < @N; i++) {
    F[0][i] = -i;
  }
}

void diag_pass(int d) {
  parallel for (int i = 1; i < @N; i++) {
    int j = d - i;
    if (j >= 1 && j < @N) {
      int up = F[i - 1][j] - 1;
      int left = F[i][j - 1] - 1;
      int diag = F[i - 1][j - 1] + ref[i][j];
      int best = diag;
      if (up > best) { best = up; }
      if (left > best) { best = left; }
      F[i][j] = best;
    }
  }
}

int main() {
  init_ref();
  init_left_border();
  init_top_border();
  for (int d = 2; d < 2 * @N - 1; d++) {
    diag_pass(d);
  }
  int sum = 0;
  for (int i = 0; i < @N; i++) {
    sum = sum + F[i][@N - 1] + F[@N - 1][i];
  }
  print(sum);
  return 0;
}
|}

(* k-means clustering: the assignment step runs on the GPU, the centroid
   recomputation is a sequential CPU reduction that reads the features
   back every iteration — Amdahl's law caps the speedup ("Other"). *)
let kmeans ?(points = 512) ?(dims = 8) ?(clusters = 8) ?(iters = 8) () =
  subst [ ("P", points); ("D", dims); ("K", clusters); ("ITERS", iters) ]
    {|// Rodinia kmeans
global float features[@P][@D];
global float centroids[@K][@D];
global int membership[@P];

void init_features() {
  for (int i = 0; i < @P; i++) {
    for (int d = 0; d < @D; d++) {
      features[i][d] = ((i * 13 + d * 7) % 97) * 0.07;
    }
  }
}

void assign_points() {
  for (int i = 0; i < @P; i++) {
    float best = 1000000.0;
    int bestk = 0;
    for (int k = 0; k < @K; k++) {
      float dist = 0.0;
      for (int d = 0; d < @D; d++) {
        float diff = features[i][d] - centroids[k][d];
        dist = dist + diff * diff;
      }
      if (dist < best) {
        best = dist;
        bestk = k;
      }
    }
    membership[i] = bestk;
  }
}

int main() {
  init_features();
  for (int k = 0; k < @K; k++) {
    for (int d = 0; d < @D; d++) {
      centroids[k][d] = features[k * (@P / @K)][d];
    }
  }
  float total_shift = 0.0;
  for (int it = 0; it < @ITERS; it++) {
    assign_points();
    // sequential centroid update on the CPU; the convergence measure is a
    // loop-carried reduction, so none of this parallelizes
    for (int k = 0; k < @K; k++) {
      for (int d = 0; d < @D; d++) {
        float acc = 0.0;
        int count = 0;
        for (int i = 0; i < @P; i++) {
          if (membership[i] == k) {
            acc = acc + features[i][d];
            count = count + 1;
          }
        }
        if (count > 0) {
          float next = acc / count;
          float shift = next - centroids[k][d];
          total_shift = total_shift + shift * shift;
          centroids[k][d] = next;
        }
      }
    }
  }
  print(total_shift);
  float sum = 0.0;
  for (int k = 0; k < @K; k++) {
    for (int d = 0; d < @D; d++) {
      sum = sum + centroids[k][d];
    }
  }
  print(sum);
  return 0;
}
|}

(* Rodinia lud: dense LU with annotated pivot-column / trailing-block
   kernels over a heap matrix. *)
let lud ?(n = 44) () =
  subst [ ("N", n) ]
    {|// Rodinia lud
global float* M;

void init_matrix() {
  parallel for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      float v = ((i * j) % 23 + 2) * 0.04;
      if (i == j) { v = v + @N.0; }
      M[i * @N + j] = v;
    }
  }
}

void perimeter_row(int k) {
  parallel for (int j = k + 1; j < @N; j++) {
    M[k * @N + j] = M[k * @N + j] * 1.0;
  }
}

void scale_col(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    M[i * @N + k] = M[i * @N + k] / M[k * @N + k];
  }
}

void internal_block(int k) {
  parallel for (int i = k + 1; i < @N; i++) {
    parallel for (int j = k + 1; j < @N; j++) {
      M[i * @N + j] = M[i * @N + j] - M[i * @N + k] * M[k * @N + j];
    }
  }
}

int main() {
  M = (float*) malloc(@N * @N * sizeof(float));
  init_matrix();
  for (int k = 0; k < @N - 1; k++) {
    perimeter_row(k);
    scale_col(k);
    internal_block(k);
  }
  float sum = 0.0;
  for (int i = 0; i < @N; i++) {
    for (int j = 0; j < @N; j++) {
      sum = sum + M[i * @N + j];
    }
  }
  print(sum);
  return 0;
}
|}

(* Simplified structured-grid Euler solver (cfd): several kernels per
   time step over heap state arrays, Runge-Kutta staging as in Rodinia's
   euler3d. *)
let cfd ?(cells = 400) ?(steps = 12) () =
  subst [ ("C", cells); ("STEPS", steps) ]
    {|// Rodinia cfd
global float* density;
global float* momx;
global float* momy;
global float* energy;
global float* step_factor;
global float* flux_d;
global float* flux_mx;
global float* flux_my;
global float* flux_e;
global float* old_d;
global float* old_mx;
global float* old_my;
global float* old_e;

void init_density() {
  parallel for (int i = 0; i < @C; i++) {
    density[i] = 1.0 + (i % 11) * 0.01;
  }
}

void init_momentum() {
  parallel for (int i = 0; i < @C; i++) {
    momx[i] = 0.1 + (i % 7) * 0.005;
    momy[i] = 0.05 + (i % 5) * 0.004;
  }
}

void init_energy() {
  parallel for (int i = 0; i < @C; i++) {
    energy[i] = 2.0 + (i % 13) * 0.01;
  }
}

void save_state() {
  parallel for (int i = 0; i < @C; i++) {
    old_d[i] = density[i];
    old_mx[i] = momx[i];
    old_my[i] = momy[i];
    old_e[i] = energy[i];
  }
}

void compute_step_factor() {
  parallel for (int i = 0; i < @C; i++) {
    float sp = sqrt(momx[i] * momx[i] + momy[i] * momy[i]) / density[i];
    step_factor[i] = 0.4 / (sp + sqrt(1.4 * 0.4 * (energy[i] / density[i] - 0.5 * sp * sp)) + 0.01);
  }
}

void compute_flux_d() {
  parallel for (int i = 1; i < @C - 1; i++) {
    flux_d[i] = 0.5 * (density[i + 1] - 2.0 * density[i] + density[i - 1]);
  }
}

void compute_flux_mom() {
  parallel for (int i = 1; i < @C - 1; i++) {
    flux_mx[i] = 0.5 * (momx[i + 1] - 2.0 * momx[i] + momx[i - 1]);
    flux_my[i] = 0.5 * (momy[i + 1] - 2.0 * momy[i] + momy[i - 1]);
  }
}

void compute_flux_e() {
  parallel for (int i = 1; i < @C - 1; i++) {
    flux_e[i] = 0.5 * (energy[i + 1] - 2.0 * energy[i] + energy[i - 1]);
  }
}

void time_step(int rk) {
  parallel for (int i = 1; i < @C - 1; i++) {
    float f = step_factor[i] / rk;
    density[i] = old_d[i] + f * flux_d[i];
    momx[i] = old_mx[i] + f * flux_mx[i];
    momy[i] = old_my[i] + f * flux_my[i];
    energy[i] = old_e[i] + f * flux_e[i];
  }
}

int main() {
  density = (float*) malloc(@C * sizeof(float));
  momx = (float*) malloc(@C * sizeof(float));
  momy = (float*) malloc(@C * sizeof(float));
  energy = (float*) malloc(@C * sizeof(float));
  step_factor = (float*) malloc(@C * sizeof(float));
  flux_d = (float*) malloc(@C * sizeof(float));
  flux_mx = (float*) malloc(@C * sizeof(float));
  flux_my = (float*) malloc(@C * sizeof(float));
  flux_e = (float*) malloc(@C * sizeof(float));
  old_d = (float*) malloc(@C * sizeof(float));
  old_mx = (float*) malloc(@C * sizeof(float));
  old_my = (float*) malloc(@C * sizeof(float));
  old_e = (float*) malloc(@C * sizeof(float));
  init_density();
  init_momentum();
  init_energy();
  for (int t = 0; t < @STEPS; t++) {
    save_state();
    compute_step_factor();
    for (int rk = 1; rk <= 3; rk++) {
      compute_flux_d();
      compute_flux_mom();
      compute_flux_e();
      time_step(rk);
    }
  }
  float sum = 0.0;
  for (int i = 0; i < @C; i++) {
    sum = sum + density[i] + energy[i];
  }
  print(sum);
  return 0;
}
|}
