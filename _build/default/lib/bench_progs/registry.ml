(* The 24-program suite of Section 6, with the paper's per-program
   metadata (suite, Table 3 limiting factor) for the report generators. *)

type limiting = Gpu | Comm | Other

type program = {
  name : string;
  suite : string;
  source : string;
  (* Table 3 values from the paper, for side-by-side reporting *)
  paper_limiting : limiting;
  paper_kernels : int;
}

let limiting_to_string = function
  | Gpu -> "GPU"
  | Comm -> "Comm."
  | Other -> "Other"

let mk name suite source paper_limiting paper_kernels =
  { name; suite; source; paper_limiting; paper_kernels }

let all : program list =
  [
    (* PolyBench *)
    mk "adi" "PolyBench" (Polybench.adi ~n:48 ~steps:40 ()) Gpu 7;
    mk "atax" "PolyBench" (Polybench.atax ~n:128 ()) Comm 3;
    mk "bicg" "PolyBench" (Polybench.bicg ~n:128 ()) Comm 2;
    mk "correlation" "PolyBench" (Polybench.correlation ~n:72 ()) Gpu 5;
    mk "covariance" "PolyBench" (Polybench.covariance ~n:72 ()) Gpu 4;
    mk "doitgen" "PolyBench" (Polybench.doitgen ~n:24 ()) Gpu 3;
    mk "gemm" "PolyBench" (Polybench.gemm ~n:112 ()) Gpu 4;
    mk "gemver" "PolyBench" (Polybench.gemver ~n:128 ()) Comm 5;
    mk "gesummv" "PolyBench" (Polybench.gesummv ~n:128 ()) Comm 2;
    mk "gramschmidt" "PolyBench" (Polybench.gramschmidt ~n:48 ()) Comm 3;
    mk "jacobi-2d-imper" "PolyBench" (Polybench.jacobi_2d ~n:72 ~steps:48 ()) Gpu 3;
    mk "seidel" "PolyBench" (Polybench.seidel ~n:64 ~steps:10 ()) Other 1;
    mk "lu" "PolyBench" (Polybench.lu ~n:64 ()) Gpu 3;
    mk "ludcmp" "PolyBench" (Polybench.ludcmp ~n:64 ()) Gpu 5;
    mk "2mm" "PolyBench" (Polybench.twomm ~n:96 ()) Gpu 7;
    mk "3mm" "PolyBench" (Polybench.threemm ~n:80 ()) Gpu 10;
    (* Rodinia *)
    mk "cfd" "Rodinia" (Rodinia.cfd ~cells:2400 ~steps:28 ()) Gpu 9;
    mk "hotspot" "Rodinia" (Rodinia.hotspot ~n:64 ~steps:60 ()) Gpu 2;
    mk "kmeans" "Rodinia" (Rodinia.kmeans ()) Other 2;
    mk "lud" "Rodinia" (Rodinia.lud ~n:64 ()) Gpu 6;
    mk "nw" "Rodinia" (Rodinia.nw ~n:128 ()) Other 4;
    mk "srad" "Rodinia" (Rodinia.srad ~n:48 ~steps:64 ()) Other 6;
    (* StreamIt / PARSEC *)
    mk "fm" "StreamIt" (Others.fm ()) Other 4;
    mk "blackscholes" "PARSEC" (Others.blackscholes ~options:30000 ()) Other 1;
  ]

let find name = List.find_opt (fun p -> p.name = name) all
