(* A simulated byte-addressable memory space. The host (CPU) memory and the
   GPU device memory are two separate instances with disjoint address
   ranges, mirroring the divided memories that motivate CGCM.

   Every allocation is an *allocation unit* in the paper's sense: a
   contiguous region created as a single unit. Addresses are plain ints;
   resolution from an interior pointer back to its unit uses the same
   greatest-key-<= query the CGCM run-time uses, so valid pointer
   arithmetic (within a unit, per C99) works and anything else faults. *)

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

type block = {
  base : int;
  size : int;
  data : Bytes.t;
  tag : string;
  mutable freed : bool;
}

type t = {
  name : string;
  range_lo : int;
  range_hi : int;
  mutable next : int;
  mutable blocks : block Cgcm_support.Avl_map.Int.t;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  (* one-entry cache: consecutive accesses usually hit the same unit *)
  mutable last : block option;
}

let word_size = 8

let create ~name ~range_lo ~range_hi =
  {
    name;
    range_lo;
    range_hi;
    next = range_lo;
    blocks = Cgcm_support.Avl_map.Int.empty;
    live_bytes = 0;
    peak_bytes = 0;
    last = None;
  }

let in_range t addr = addr >= t.range_lo && addr < t.range_hi

let round_up n align = (n + align - 1) / align * align

(* Allocate [size] bytes (zero-initialised). A 16-byte guard gap separates
   consecutive units so off-by-one pointer arithmetic faults instead of
   silently touching a neighbour. *)
let alloc ?(tag = "heap") t size =
  if size < 0 then fault "%s: negative allocation size %d" t.name size;
  let size = max size 1 in
  let base = t.next in
  if base + size >= t.range_hi then
    fault "%s: out of memory allocating %d bytes" t.name size;
  t.next <- base + round_up size 16 + 16;
  let block = { base; size; data = Bytes.make size '\000'; tag; freed = false } in
  t.blocks <- Cgcm_support.Avl_map.Int.add base block t.blocks;
  t.live_bytes <- t.live_bytes + size;
  t.peak_bytes <- max t.peak_bytes t.live_bytes;
  base

let block_of_base t base =
  match Cgcm_support.Avl_map.Int.find_opt base t.blocks with
  | Some b when not b.freed -> b
  | Some _ -> fault "%s: use of freed block at 0x%x" t.name base
  | None -> fault "%s: 0x%x is not the base of any allocation unit" t.name base

(* Resolve an interior pointer to its allocation unit. *)
let block_of_addr t addr =
  match t.last with
  | Some b when (not b.freed) && addr >= b.base && addr < b.base + b.size -> b
  | _ -> (
    match Cgcm_support.Avl_map.Int.greatest_leq addr t.blocks with
    | Some (_, b) when (not b.freed) && addr >= b.base && addr < b.base + b.size
      ->
      t.last <- Some b;
      b
    | Some (_, b) when b.freed && addr >= b.base && addr < b.base + b.size ->
      fault "%s: access to freed allocation unit (addr 0x%x, tag %s)" t.name
        addr b.tag
    | _ -> fault "%s: wild pointer 0x%x" t.name addr)

let free t base =
  let b = block_of_base t base in
  if b.base <> base then
    fault "%s: free of interior pointer 0x%x (unit base 0x%x)" t.name base b.base;
  b.freed <- true;
  t.live_bytes <- t.live_bytes - b.size;
  t.blocks <- Cgcm_support.Avl_map.Int.remove base t.blocks

let check_span t b addr len what =
  if addr < b.base || addr + len > b.base + b.size then
    fault "%s: %s of %d bytes at 0x%x overruns unit [0x%x, 0x%x)" t.name what len
      addr b.base (b.base + b.size)

let load_u8 t addr =
  let b = block_of_addr t addr in
  check_span t b addr 1 "load";
  Char.code (Bytes.get b.data (addr - b.base))

let store_u8 t addr v =
  let b = block_of_addr t addr in
  check_span t b addr 1 "store";
  Bytes.set b.data (addr - b.base) (Char.chr (v land 0xff))

let load_i64 t addr =
  let b = block_of_addr t addr in
  check_span t b addr 8 "load";
  Bytes.get_int64_le b.data (addr - b.base)

let store_i64 t addr v =
  let b = block_of_addr t addr in
  check_span t b addr 8 "store";
  Bytes.set_int64_le b.data (addr - b.base) v

let load_f64 t addr = Int64.float_of_bits (load_i64 t addr)

let store_f64 t addr v = store_i64 t addr (Int64.bits_of_float v)

(* Raw byte access used by the transfer engine. *)
let read_bytes t addr len =
  let b = block_of_addr t addr in
  check_span t b addr len "read";
  Bytes.sub b.data (addr - b.base) len

let write_bytes t addr src =
  let len = Bytes.length src in
  let b = block_of_addr t addr in
  check_span t b addr len "write";
  Bytes.blit src 0 b.data (addr - b.base) len

(* Copy [len] bytes across (or within) spaces. *)
let blit ~src ~src_addr ~dst ~dst_addr ~len =
  if len > 0 then write_bytes dst dst_addr (read_bytes src src_addr len)

let unit_bounds t addr =
  let b = block_of_addr t addr in
  (b.base, b.size)

let live_bytes t = t.live_bytes

let peak_bytes t = t.peak_bytes

let live_units t = Cgcm_support.Avl_map.Int.cardinal t.blocks

(* Store an OCaml string as NUL-terminated bytes. *)
let store_string t addr s =
  String.iteri (fun i c -> store_u8 t (addr + i) (Char.code c)) s;
  store_u8 t (addr + String.length s) 0

let load_string t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = load_u8 t a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf
