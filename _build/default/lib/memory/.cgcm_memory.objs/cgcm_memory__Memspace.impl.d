lib/memory/memspace.ml: Buffer Bytes Cgcm_support Char Fmt Int64 String
