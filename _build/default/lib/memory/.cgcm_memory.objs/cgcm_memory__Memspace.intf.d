lib/memory/memspace.mli: Bytes Cgcm_support Format
