(** A simulated byte-addressable memory space.

    The host (CPU) memory and the GPU device memory are separate instances
    with disjoint address ranges — the divided memories that motivate
    CGCM. Every allocation is an {e allocation unit} in the paper's sense:
    a contiguous region created as a single unit, resolvable from any
    interior pointer. Accesses are bounds-checked against the containing
    unit, so valid pointer arithmetic (within a unit, per C99) works and
    anything else raises {!Fault}. *)

(** Raised on wild pointers, out-of-bounds accesses, use-after-free,
    double free, interior-pointer free, and exhaustion. *)
exception Fault of string

(** Raise a {!Fault} with a formatted message. *)
val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a

type block = {
  base : int;
  size : int;
  data : Bytes.t;
  tag : string;  (** provenance label, for diagnostics *)
  mutable freed : bool;
}

type t = {
  name : string;
  range_lo : int;
  range_hi : int;
  mutable next : int;  (** bump-allocation frontier *)
  mutable blocks : block Cgcm_support.Avl_map.Int.t;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable last : block option;  (** one-entry resolution cache *)
}

val word_size : int
(** Size of an IR word (8 bytes). *)

val create : name:string -> range_lo:int -> range_hi:int -> t
(** [create ~name ~range_lo ~range_hi] is an empty space whose unit
    addresses fall in [\[range_lo, range_hi)]. *)

val in_range : t -> int -> bool

val alloc : ?tag:string -> t -> int -> int
(** [alloc t size] creates a zero-initialised allocation unit and returns
    its base address. A 16-byte guard gap separates consecutive units so
    off-by-one arithmetic faults rather than corrupting a neighbour.
    Size 0 is clamped to 1. *)

val free : t -> int -> unit
(** [free t base] retires the unit whose base address is [base]. Faults on
    interior pointers and double frees. *)

val block_of_addr : t -> int -> block
(** Resolve an interior pointer to its allocation unit (the paper's
    greatest-key-≤ lookup). Faults on wild pointers. *)

val unit_bounds : t -> int -> int * int
(** [unit_bounds t addr] is [(base, size)] of the containing unit. *)

(** {2 Typed access} — all bounds-checked against the containing unit. *)

val load_u8 : t -> int -> int
val store_u8 : t -> int -> int -> unit
val load_i64 : t -> int -> int64
val store_i64 : t -> int -> int64 -> unit
val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit

val read_bytes : t -> int -> int -> Bytes.t
val write_bytes : t -> int -> Bytes.t -> unit

val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> len:int -> unit
(** Copy bytes across (or within) spaces — the transfer engine's core. *)

(** {2 NUL-terminated strings} *)

val store_string : t -> int -> string -> unit
val load_string : t -> int -> string

(** {2 Accounting} *)

val live_bytes : t -> int
val peak_bytes : t -> int
val live_units : t -> int
