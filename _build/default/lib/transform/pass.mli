(** Pass manager: named module transformations composed into pipelines,
    with debug-level logging of per-pass instruction deltas and timing,
    and verification between passes. *)

type t = {
  name : string;
  description : string;
  run : Cgcm_ir.Ir.modul -> unit;
}

val make :
  name:string -> description:string -> (Cgcm_ir.Ir.modul -> unit) -> t

(** The standard CGCM passes. *)

val simplify : t
val comm_mgmt : t
val glue_kernels : t
val alloca_promotion : t
val map_promotion : t

val managed_pipeline : t list
(** simplify + communication management: unoptimized CGCM. *)

val optimized_pipeline : t list
(** The full §5.3 schedule: simplify, comm-mgmt, glue kernels, alloca
    promotion, map promotion. *)

val run_pipeline : t list -> Cgcm_ir.Ir.modul -> unit
(** Run each pass and re-verify the module after it. *)

val instr_count : Cgcm_ir.Ir.modul -> int

val find : string -> t option
val all : t list
