(* Small IR rewriting helpers shared by the transformation passes. *)

module Ir = Cgcm_ir.Ir

(* Replace instruction lists block by block; [f] maps one instruction to a
   sequence. *)
let expand_instrs (func : Ir.func) f =
  Array.iteri
    (fun bi (b : Ir.block) -> b.Ir.instrs <- List.concat_map (f bi) b.Ir.instrs)
    func.Ir.blocks

(* Substitute values (e.g. redirect a register) everywhere. *)
let substitute_values (func : Ir.func) subst =
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <- List.map (Ir.map_uses_instr subst) b.Ir.instrs;
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Br t -> Ir.Br t
        | Ir.Cbr (v, t1, t2) -> Ir.Cbr (subst v, t1, t2)
        | Ir.Ret v -> Ir.Ret (Option.map subst v)))
    func.Ir.blocks

(* Redirect an edge [from_ -> to_] to [to_'] in the terminator. *)
let redirect_edge (func : Ir.func) ~from_ ~to_ ~to_' =
  let b = func.Ir.blocks.(from_) in
  b.Ir.term <-
    (match b.Ir.term with
    | Ir.Br t when t = to_ -> Ir.Br to_'
    | Ir.Cbr (v, t1, t2) ->
      Ir.Cbr (v, (if t1 = to_ then to_' else t1), if t2 = to_ then to_' else t2)
    | t -> t)

(* Split the edge [from_ -> to_] with a fresh block holding [instrs]. *)
let split_edge (func : Ir.func) ~from_ ~to_ ~instrs =
  let nb = Ir.add_block func { Ir.instrs; term = Ir.Br to_ } in
  redirect_edge func ~from_ ~to_ ~to_':nb;
  nb

(* Create (or reuse) a preheader: a block that is the unique non-loop
   predecessor of [header]. Returns its index, or None if the header is
   the function entry. *)
let make_preheader (func : Ir.func) (loops : Cgcm_analysis.Loops.t)
    (l : Cgcm_analysis.Loops.loop) =
  if l.Cgcm_analysis.Loops.header = 0 then None
  else begin
    ignore loops;
    let entries = Cgcm_analysis.Loops.entry_edges func l in
    match entries with
    | [] -> None  (* unreachable loop *)
    | _ ->
      let header = l.Cgcm_analysis.Loops.header in
      let ph = Ir.add_block func { Ir.instrs = []; term = Ir.Br header } in
      List.iter
        (fun p -> redirect_edge func ~from_:p ~to_:header ~to_':ph)
        entries;
      Some ph
  end

(* Append instructions at the end of a block (before the terminator). *)
let append_instrs (func : Ir.func) b instrs =
  let blk = func.Ir.blocks.(b) in
  blk.Ir.instrs <- blk.Ir.instrs @ instrs
