(* Pass manager: named module transformations composed into pipelines,
   with optional logging and per-pass timing (via the [logs] library at
   debug level), and verification between passes. *)

module Ir = Cgcm_ir.Ir

let src = Logs.Src.create "cgcm.pass" ~doc:"CGCM pass manager"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  name : string;
  description : string;
  run : Ir.modul -> unit;
}

let make ~name ~description run = { name; description; run }

(* The standard CGCM passes, in their §5.3 schedule order. *)
let simplify =
  make ~name:"simplify"
    ~description:"constant folding, algebraic identities, dead code"
    Simplify.run

let comm_mgmt =
  make ~name:"comm-mgmt"
    ~description:
      "insert map/unmap/release around every launch (use-based type \
       inference); mark escaping allocas"
    Comm_mgmt.run

let glue_kernels =
  make ~name:"glue-kernels"
    ~description:
      "outline small CPU regions between launches onto the GPU"
    (fun m -> Glue_kernels.run m)

let alloca_promotion =
  make ~name:"alloca-promotion"
    ~description:"preallocate escaping locals in callers' frames"
    (fun m -> Alloca_promotion.run m)

let map_promotion =
  make ~name:"map-promotion"
    ~description:
      "hoist run-time calls out of loops and up the call graph (acyclic \
       communication)"
    (fun m -> Map_promotion.run m)

(* Pipelines per optimization level. *)
let managed_pipeline = [ simplify; comm_mgmt ]

let optimized_pipeline =
  [ simplify; comm_mgmt; glue_kernels; alloca_promotion; map_promotion ]

let instr_count (m : Ir.modul) =
  List.fold_left
    (fun acc f -> Ir.fold_instrs (fun n _ _ -> n + 1) acc f)
    0 m.Ir.funcs

(* Run a pipeline, verifying after every pass (each pass also verifies
   internally; the double check is cheap and catches manager bugs). *)
let run_pipeline (passes : t list) (m : Ir.modul) =
  List.iter
    (fun p ->
      let before = instr_count m in
      let t0 = Sys.time () in
      p.run m;
      Cgcm_ir.Verifier.verify_modul m;
      Log.debug (fun k ->
          k "%s: %d -> %d instructions (%.1f ms)" p.name before
            (instr_count m)
            ((Sys.time () -. t0) *. 1000.0)))
    passes

let find name =
  List.find_opt (fun p -> p.name = name) optimized_pipeline

let all = optimized_pipeline
