lib/transform/alloca_promotion.mli: Cgcm_ir
