lib/transform/rewrite.ml: Array Cgcm_analysis Cgcm_ir List Option
