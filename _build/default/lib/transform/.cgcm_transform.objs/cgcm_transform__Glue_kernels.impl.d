lib/transform/glue_kernels.ml: Array Cgcm_analysis Cgcm_ir Comm_mgmt Fmt Hashtbl List
