lib/transform/map_promotion.ml: Array Cgcm_analysis Cgcm_ir Hashtbl List Option Rewrite
