lib/transform/glue_kernels.mli: Cgcm_ir
