lib/transform/comm_mgmt.mli: Cgcm_analysis Cgcm_ir
