lib/transform/map_promotion.mli: Cgcm_ir
