lib/transform/pass.ml: Alloca_promotion Cgcm_ir Comm_mgmt Glue_kernels List Logs Map_promotion Simplify Sys
