lib/transform/simplify.ml: Array Cgcm_ir Hashtbl Int64 List Rewrite
