lib/transform/comm_mgmt.ml: Array Cgcm_analysis Cgcm_ir Hashtbl List Rewrite
