lib/transform/alloca_promotion.ml: Array Cgcm_analysis Cgcm_ir List Option Rewrite
