lib/transform/pass.mli: Cgcm_ir
