lib/analysis/alias.ml: Array Cgcm_ir Hashtbl List
