lib/analysis/loops.ml: Array Cgcm_ir Hashtbl List Option
