lib/analysis/liveness.ml: Array Cgcm_ir Int List Set
