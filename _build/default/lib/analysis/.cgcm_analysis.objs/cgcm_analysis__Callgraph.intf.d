lib/analysis/callgraph.mli: Cgcm_ir Hashtbl
