lib/analysis/liveness.mli: Cgcm_ir Set
