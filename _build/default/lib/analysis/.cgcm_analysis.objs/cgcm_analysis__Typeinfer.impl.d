lib/analysis/typeinfer.ml: Alias Array Cgcm_ir Fmt Hashtbl List
