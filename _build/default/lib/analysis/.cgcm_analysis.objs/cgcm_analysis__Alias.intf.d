lib/analysis/alias.mli: Cgcm_ir Hashtbl
