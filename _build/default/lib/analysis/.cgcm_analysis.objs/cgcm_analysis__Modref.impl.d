lib/analysis/modref.ml: Alias Cgcm_ir Hashtbl List
