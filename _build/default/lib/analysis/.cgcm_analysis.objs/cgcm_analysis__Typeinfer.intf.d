lib/analysis/typeinfer.mli: Alias Cgcm_ir
