lib/analysis/callgraph.ml: Cgcm_ir Hashtbl List Option
