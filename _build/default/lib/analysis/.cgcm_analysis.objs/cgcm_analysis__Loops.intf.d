lib/analysis/loops.mli: Cgcm_ir
