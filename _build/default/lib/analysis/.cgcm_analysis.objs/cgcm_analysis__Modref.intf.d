lib/analysis/modref.mli: Alias Cgcm_ir Hashtbl
