(** Natural-loop detection from back edges (via dominators). Map
    promotion's loop regions come from here. *)

type loop = {
  header : int;
  body : int list;  (** blocks in the loop, including the header *)
  mutable parent : int option;  (** index of the innermost enclosing loop *)
  depth : int;  (** 1 = outermost *)
}

type t = {
  loops : loop array;
  block_loop : int option array;  (** innermost loop containing each block *)
}

val in_loop : loop -> int -> bool
val analyze : Cgcm_ir.Ir.func -> t

val innermost_first : t -> int list
(** Loop indices ordered deepest first — the promotion order. *)

val exit_edges : Cgcm_ir.Ir.func -> loop -> (int * int) list
(** Edges from a block in the loop to one outside (where promotion puts
    unmap + release). *)

val entry_edges : Cgcm_ir.Ir.func -> loop -> int list
(** Predecessors of the header from outside the loop (redirected to the
    preheader). *)
