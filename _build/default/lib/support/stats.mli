(** Numeric helpers for the report generators. *)

val mean : float list -> float

val geomean : float list -> float
(** Geometric mean; raises [Invalid_argument] on non-positive inputs. *)

val clamp : lo:float -> hi:float -> float -> float
val sum : float list -> float

val percent : float -> float -> float
(** [percent part total] is [100 * part / total], or 0 when [total <= 0]. *)
