(** Self-balancing binary tree map with an efficient
    greatest-key-less-or-equal query.

    The CGCM paper stores allocation-unit metadata in exactly such a
    structure, indexed by the base address of each unit (Section 3.1):
    {!Make.greatest_leq} implements the paper's [greatestLTE], which
    resolves an interior pointer to its allocation unit. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) : sig
  type key = Key.t

  type 'a t

  val empty : 'a t
  val is_empty : 'a t -> bool

  val add : key -> 'a -> 'a t -> 'a t
  (** Insert or replace. *)

  val remove : key -> 'a t -> 'a t
  (** Removing an absent key is a no-op. *)

  val find_opt : key -> 'a t -> 'a option
  val mem : key -> 'a t -> bool

  val greatest_leq : key -> 'a t -> (key * 'a) option
  (** Greatest binding whose key is <= the query — the paper's
      [greatestLTE]. O(log n). *)

  val least_geq : key -> 'a t -> (key * 'a) option

  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option

  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val bindings : 'a t -> (key * 'a) list
  val cardinal : 'a t -> int
  val of_list : (key * 'a) list -> 'a t

  val invariant : 'a t -> bool
  (** AVL height balance + strict key ordering; for the property tests. *)
end

module Int : module type of Make (struct
  type t = int

  let compare = Int.compare
end)
