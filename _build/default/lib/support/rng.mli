(** Deterministic splitmix64 generator. Benchmark workloads must be
    reproducible across runs and execution modes, so the global [Random]
    state is never used. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]; raises on non-positive bounds. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)
