(* Small numeric helpers shared by the report generators. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Geometric mean; every input must be strictly positive. *)
let geomean = function
  | [] -> nan
  | xs ->
    let logsum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input"
          else acc +. log x)
        0.0 xs
    in
    exp (logsum /. float_of_int (List.length xs))

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sum = List.fold_left ( +. ) 0.0

let percent part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total
