(* Self-balancing binary tree map with an efficient greatest-key-
   less-or-equal query. The CGCM paper stores allocation-unit metadata in
   exactly such a structure, indexed by the base address of each unit
   (Section 3.1): [greatest_leq] implements the paper's [greatestLTE]. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) = struct
  type key = Key.t

  type 'a t =
    | Leaf
    | Node of { l : 'a t; k : key; v : 'a; r : 'a t; h : int }

  let empty = Leaf

  let is_empty = function Leaf -> true | Node _ -> false

  let height = function Leaf -> 0 | Node { h; _ } -> h

  let mk l k v r =
    let h = 1 + max (height l) (height r) in
    Node { l; k; v; r; h }

  (* Rebalance assuming subtrees differ in height by at most 2. *)
  let balance l k v r =
    let hl = height l and hr = height r in
    if hl > hr + 1 then
      match l with
      | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll lk lv (mk lr k v r)
        else begin
          match lr with
          | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
            mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r)
          | Leaf -> assert false
        end
      | Leaf -> assert false
    else if hr > hl + 1 then
      match r with
      | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l k v rl) rk rv rr
        else begin
          match rl with
          | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
            mk (mk l k v rll) rlk rlv (mk rlr rk rv rr)
          | Leaf -> assert false
        end
      | Leaf -> assert false
    else mk l k v r

  let rec add key value = function
    | Leaf -> mk Leaf key value Leaf
    | Node { l; k; v; r; _ } ->
      let c = Key.compare key k in
      if c = 0 then mk l key value r
      else if c < 0 then balance (add key value l) k v r
      else balance l k v (add key value r)

  let rec min_binding = function
    | Leaf -> None
    | Node { l = Leaf; k; v; _ } -> Some (k, v)
    | Node { l; _ } -> min_binding l

  let rec max_binding = function
    | Leaf -> None
    | Node { r = Leaf; k; v; _ } -> Some (k, v)
    | Node { r; _ } -> max_binding r

  let rec remove_min = function
    | Leaf -> invalid_arg "Avl_map.remove_min"
    | Node { l = Leaf; k; v; r; _ } -> (k, v, r)
    | Node { l; k; v; r; _ } ->
      let mk', mv', l' = remove_min l in
      (mk', mv', balance l' k v r)

  let rec remove key = function
    | Leaf -> Leaf
    | Node { l; k; v; r; _ } ->
      let c = Key.compare key k in
      if c < 0 then balance (remove key l) k v r
      else if c > 0 then balance l k v (remove key r)
      else begin
        match r with
        | Leaf -> l
        | _ ->
          let sk, sv, r' = remove_min r in
          balance l sk sv r'
      end

  let rec find_opt key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      let c = Key.compare key k in
      if c = 0 then Some v else if c < 0 then find_opt key l else find_opt key r

  let mem key t = Option.is_some (find_opt key t)

  (* Greatest binding whose key is <= [key]; the paper's greatestLTE. *)
  let greatest_leq key t =
    let rec go best = function
      | Leaf -> best
      | Node { l; k; v; r; _ } ->
        let c = Key.compare key k in
        if c = 0 then Some (k, v)
        else if c < 0 then go best l
        else go (Some (k, v)) r
    in
    go None t

  (* Least binding whose key is >= [key]. *)
  let least_geq key t =
    let rec go best = function
      | Leaf -> best
      | Node { l; k; v; r; _ } ->
        let c = Key.compare key k in
        if c = 0 then Some (k, v)
        else if c > 0 then go best r
        else go (Some (k, v)) l
    in
    go None t

  let rec fold f t acc =
    match t with
    | Leaf -> acc
    | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

  let iter f t = fold (fun k v () -> f k v) t ()

  let bindings t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let cardinal t = fold (fun _ _ n -> n + 1) t 0

  let of_list l = List.fold_left (fun t (k, v) -> add k v t) empty l

  (* Structural invariants, used by the property-based tests. *)
  let rec check_heights = function
    | Leaf -> true
    | Node { l; k = _; v = _; r; h } ->
      h = 1 + max (height l) (height r)
      && abs (height l - height r) <= 1
      && check_heights l && check_heights r

  let rec check_order = function
    | Leaf -> true
    | Node { l; k; r; _ } ->
      (match max_binding l with None -> true | Some (m, _) -> Key.compare m k < 0)
      && (match min_binding r with None -> true | Some (m, _) -> Key.compare k m < 0)
      && check_order l && check_order r

  let invariant t = check_heights t && check_order t
end

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module Int = Make (Int_key)
