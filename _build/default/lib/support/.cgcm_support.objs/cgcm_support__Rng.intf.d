lib/support/rng.mli:
