lib/support/avl_map.ml: Int List Option
