lib/support/avl_map.mli: Int
