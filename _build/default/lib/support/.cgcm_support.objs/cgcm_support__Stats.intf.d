lib/support/stats.mli:
