lib/interp/interp.ml: Array Buffer Cgcm_gpusim Cgcm_ir Cgcm_memory Cgcm_runtime Float Fmt Hashtbl Int64 List Option Printf String
