lib/interp/interp.mli: Cgcm_gpusim Cgcm_ir Cgcm_memory Cgcm_runtime
