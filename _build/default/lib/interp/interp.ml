(* IR interpreter with a split CPU/GPU memory model and the analytic cost
   model attached.

   Two execution modes:
   - [Split]   the real model: kernels execute against device memory, all
               data movement must go through the CGCM run-time (or explicit
               driver calls), and the clock advances per the cost model.
   - [Unified] a debugging oracle: one flat memory, kernels read host
               memory directly, cgcm.* intrinsics are identity/no-ops.
               Every transformed program must produce the same observable
               output under [Unified] as the untransformed program — the
               differential tests lean on this. *)

module Ir = Cgcm_ir.Ir
module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Trace = Cgcm_gpusim.Trace
module Cost_model = Cgcm_gpusim.Cost_model
module Runtime = Cgcm_runtime.Runtime

exception Exec_error of string

let error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

(* - [Inspector_executor] models the idealized baseline of Section 6.3:
     an oracle scheduler, exactly one byte transferred per accessed
     allocation unit, a sequential inspection pass before every launch,
     and fully cyclic (synchronous) communication. It runs on the plain
     DOALL-parallelized module, with no CGCM management. *)
type mode = Split | Unified | Inspector_executor

type config = {
  mode : mode;
  cost : Cost_model.t;
  trace : bool;
  (* fraction of kernel work the sequential inspector replays on the CPU *)
  inspector_fraction : float;
  (* dynamic instruction budget: guards against infinite loops *)
  fuel : int;
  (* per-function dynamic instruction counts in the result *)
  profile : bool;
}

let default_config =
  {
    mode = Split;
    cost = Cost_model.default;
    trace = false;
    inspector_fraction = 0.25;
    fuel = 4_000_000_000;
    profile = false;
  }

type rtval = VI of int64 | VF of float

let as_int = function
  | VI i -> i
  | VF _ -> error "type confusion: float used as integer/pointer"

let as_float = function
  | VF f -> f
  | VI _ -> error "type confusion: integer used as float"

type result = {
  exit_code : int64;
  output : string;
  wall : float;  (* total simulated cycles, including the final sync *)
  cpu_compute : float;  (* cycles spent in interpreted CPU instructions *)
  gpu : float;  (* device busy cycles in kernels *)
  comm : float;  (* cycles spent in CPU-GPU transfers *)
  sync : float;  (* CPU cycles stalled on the device *)
  cpu_insts : int;
  kernel_insts : int;
  dev_stats : Device.stats;
  rt_stats : Runtime.stats;
  trace : Trace.t;
  profile : (string * int) list;
      (* per-function dynamic instruction counts, descending; empty unless
         config.profile *)
}

type machine = {
  m : Ir.modul;
  host : Memspace.t;
  dev : Device.t;
  rt : Runtime.t;
  mode : mode;
  cost : Cost_model.t;
  funcs : (string, Ir.func) Hashtbl.t;
  globals_host : (string, int) Hashtbl.t;
  out : Buffer.t;
  mutable now : float;
  mutable pending_insts : int;  (* CPU instructions not yet folded into now *)
  mutable cpu_insts : int;
  mutable kernel_insts : int;
  mutable in_kernel : bool;
  mutable fuel : int;  (* dynamic instruction budget; guards infinite loops *)
  inspector_fraction : float;
  (* Inspector-executor: allocation units touched by the current kernel,
     base address -> was written. Units allocated after [threshold]
     (thread-local stack slots) are not program data and are excluded. *)
  mutable track_units : (int, bool) Hashtbl.t option;
  mutable track_threshold : int;
  (* profiling *)
  profile_on : bool;
  profile_counts : (string, int ref) Hashtbl.t;
  mutable cur_fn : string;
}

let flush_time mc =
  if mc.pending_insts > 0 then begin
    mc.now <- mc.now +. (float_of_int mc.pending_insts *. mc.cost.Cost_model.cpu_cycle);
    mc.pending_insts <- 0
  end

let tick mc =
  mc.fuel <- mc.fuel - 1;
  if mc.fuel <= 0 then error "instruction budget exhausted (infinite loop?)";
  if mc.profile_on then begin
    match Hashtbl.find_opt mc.profile_counts mc.cur_fn with
    | Some r -> incr r
    | None -> Hashtbl.replace mc.profile_counts mc.cur_fn (ref 1)
  end;
  (* In unified mode there is no device: kernel work is CPU work (this is
     what makes it the sequential baseline for explicitly-written
     kernels). *)
  if mc.in_kernel && mc.mode <> Unified then
    mc.kernel_insts <- mc.kernel_insts + 1
  else begin
    mc.cpu_insts <- mc.cpu_insts + 1;
    mc.pending_insts <- mc.pending_insts + 1
  end

(* Memory space for the executing context. *)
let space mc =
  if mc.in_kernel && mc.mode = Split then mc.dev.Device.mem else mc.host

let global_addr mc g =
  if mc.in_kernel && mc.mode = Split then begin
    let addr, now = Device.module_get_global mc.dev ~now:mc.now g in
    mc.now <- now;
    addr
  end
  else begin
    match Hashtbl.find_opt mc.globals_host g with
    | Some a -> a
    | None -> error "unknown global %s" g
  end

(* ------------------------------------------------------------------ *)
(* Program loading: allocate and initialise globals, register them with
   the run-time (the compiler's declareGlobal calls before main).        *)

let load_globals mc =
  List.iter
    (fun (g : Ir.global) ->
      let base = Memspace.alloc ~tag:("g:" ^ g.gname) mc.host g.gsize in
      Hashtbl.replace mc.globals_host g.gname base)
    mc.m.Ir.globals;
  (* Initialise after all bases are known (pointer initialisers). *)
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find mc.globals_host g.gname in
      match g.ginit with
      | Ir.Zeroed -> ()
      | Ir.I64s a ->
        Array.iteri (fun i v -> Memspace.store_i64 mc.host (base + (8 * i)) v) a
      | Ir.F64s a ->
        Array.iteri (fun i v -> Memspace.store_f64 mc.host (base + (8 * i)) v) a
      | Ir.Str s -> Memspace.store_string mc.host base s
      | Ir.Ptrs names ->
        Array.iteri
          (fun i n ->
            let v =
              if n = "" then 0L
              else Int64.of_int (Hashtbl.find mc.globals_host n)
            in
            Memspace.store_i64 mc.host (base + (8 * i)) v)
          names)
    mc.m.Ir.globals;
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find mc.globals_host g.gname in
      Runtime.declare_global mc.rt ~name:g.gname ~base ~size:g.gsize
        ~read_only:g.gread_only)
    mc.m.Ir.globals

(* ------------------------------------------------------------------ *)
(* Instruction evaluation                                              *)

let eval_binop op a b =
  let open Ir in
  let i op2 = VI (op2 (as_int a) (as_int b)) in
  let f op2 = VF (op2 (as_float a) (as_float b)) in
  let icmp op2 = VI (if op2 (compare (as_int a) (as_int b)) 0 then 1L else 0L) in
  (* direct float operators: IEEE semantics (NaN <> NaN), unlike the
     polymorphic compare *)
  let fcmp op2 = VI (if op2 (as_float a) (as_float b) then 1L else 0L) in
  match op with
  | Add -> i Int64.add
  | Sub -> i Int64.sub
  | Mul -> i Int64.mul
  | Div ->
    if as_int b = 0L then error "integer division by zero";
    i Int64.div
  | Rem ->
    if as_int b = 0L then error "integer remainder by zero";
    i Int64.rem
  | And -> i Int64.logand
  | Or -> i Int64.logor
  | Xor -> i Int64.logxor
  | Shl -> VI (Int64.shift_left (as_int a) (Int64.to_int (as_int b) land 63))
  | Shr ->
    VI (Int64.shift_right_logical (as_int a) (Int64.to_int (as_int b) land 63))
  | Fadd -> f ( +. )
  | Fsub -> f ( -. )
  | Fmul -> f ( *. )
  | Fdiv -> f ( /. )
  | Eq -> icmp ( = )
  | Ne -> icmp ( <> )
  | Lt -> icmp ( < )
  | Le -> icmp ( <= )
  | Gt -> icmp ( > )
  | Ge -> icmp ( >= )
  | Feq -> fcmp (fun (x : float) y -> x = y)
  | Fne -> fcmp (fun (x : float) y -> x <> y)
  | Flt -> fcmp (fun (x : float) y -> x < y)
  | Fle -> fcmp (fun (x : float) y -> x <= y)
  | Fgt -> fcmp (fun (x : float) y -> x > y)
  | Fge -> fcmp (fun (x : float) y -> x >= y)

let eval_unop op a =
  let open Ir in
  match op with
  | Neg -> VI (Int64.neg (as_int a))
  | Not -> VI (Int64.lognot (as_int a))
  | Fneg -> VF (-.as_float a)
  | Int_to_float -> VF (Int64.to_float (as_int a))
  | Float_to_int -> VI (Int64.of_float (as_float a))

let math1 name =
  match name with
  | "sqrt" -> Some sqrt
  | "exp" -> Some exp
  | "log" -> Some log
  | "fabs" -> Some abs_float
  | "floor" -> Some floor
  | "ceil" -> Some ceil
  | "sin" -> Some sin
  | "cos" -> Some cos
  | "tan" -> Some tan
  | _ -> None

let rec exec_func mc (f : Ir.func) (args : rtval array) : rtval option =
  if Array.length args <> f.Ir.nargs then
    error "%s called with %d args, expected %d" f.Ir.fname (Array.length args)
      f.Ir.nargs;
  let caller_fn = mc.cur_fn in
  mc.cur_fn <- f.Ir.fname;
  let frame = Array.make (max f.Ir.nregs 1) (VI 0L) in
  Array.blit args 0 frame 0 (Array.length args);
  let frame_allocas = ref [] in
  let registered = ref [] in
  let sp = space mc in
  let eval = function
    | Ir.Reg r -> frame.(r)
    | Ir.Imm_int i -> VI i
    | Ir.Imm_float x -> VF x
    | Ir.Global g -> VI (Int64.of_int (global_addr mc g))
  in
  let finish () =
    (* Stack frame unwinding: expire declareAlloca registrations, free the
       frame's allocation units. *)
    List.iter
      (fun base ->
        if mc.mode = Split then Runtime.expire_alloca mc.rt ~base)
      !registered;
    List.iter (fun base -> Memspace.free sp base) !frame_allocas
  in
  let rec run_block b =
    let block = f.Ir.blocks.(b) in
    List.iter exec_instr block.Ir.instrs;
    match block.Ir.term with
    | Ir.Br b' ->
      tick mc;
      run_block b'
    | Ir.Cbr (v, b1, b2) ->
      tick mc;
      if as_int (eval v) <> 0L then run_block b1 else run_block b2
    | Ir.Ret v ->
      tick mc;
      Option.map eval v
  and exec_instr i =
    tick mc;
    match i with
    | Ir.Binop (d, op, a, b) -> frame.(d) <- eval_binop op (eval a) (eval b)
    | Ir.Unop (d, op, a) -> frame.(d) <- eval_unop op (eval a)
    | Ir.Load (d, ty, a) -> begin
      let addr = Int64.to_int (as_int (eval a)) in
      (match mc.track_units with
      | Some tbl ->
        let base, _ = Memspace.unit_bounds sp addr in
        if base < mc.track_threshold && not (Hashtbl.mem tbl base) then
          Hashtbl.replace tbl base false
      | None -> ());
      frame.(d) <-
        (match ty with
        | Ir.I8 -> VI (Int64.of_int (Memspace.load_u8 sp addr))
        | Ir.I64 -> VI (Memspace.load_i64 sp addr)
        | Ir.F64 -> VF (Memspace.load_f64 sp addr))
    end
    | Ir.Store (ty, a, v) -> begin
      let addr = Int64.to_int (as_int (eval a)) in
      (match mc.track_units with
      | Some tbl ->
        let base, _ = Memspace.unit_bounds sp addr in
        if base < mc.track_threshold then Hashtbl.replace tbl base true
      | None -> ());
      match ty with
      | Ir.I8 -> Memspace.store_u8 sp addr (Int64.to_int (as_int (eval v)) land 0xff)
      | Ir.I64 -> Memspace.store_i64 sp addr (as_int (eval v))
      | Ir.F64 -> Memspace.store_f64 sp addr (as_float (eval v))
    end
    | Ir.Alloca (d, size, info) -> begin
      let size = Int64.to_int (as_int (eval size)) in
      let base = Memspace.alloc ~tag:info.Ir.aname sp size in
      frame_allocas := base :: !frame_allocas;
      frame.(d) <- VI (Int64.of_int base);
      if info.Ir.aregistered && (not mc.in_kernel) && mc.mode = Split then begin
        flush_time mc;
        mc.rt.Runtime.now <- mc.now;
        Runtime.declare_alloca mc.rt ~base ~size;
        mc.now <- mc.rt.Runtime.now;
        registered := base :: !registered
      end
    end
    | Ir.Call (d, name, args) -> begin
      let argv = List.map eval args in
      let res = dispatch_call mc name argv in
      match d with
      | Some d -> frame.(d) <- (match res with Some v -> v | None -> VI 0L)
      | None -> ()
    end
    | Ir.Launch { kernel; trip; args } ->
      exec_launch mc ~kernel ~trip:(Int64.to_int (as_int (eval trip)))
        ~args:(List.map eval args)
  in
  let res =
    try run_block 0
    with e ->
      finish ();
      mc.cur_fn <- caller_fn;
      raise e
  in
  finish ();
  mc.cur_fn <- caller_fn;
  res

and dispatch_call mc name argv : rtval option =
  match (name, argv) with
  | ("malloc" | "calloc"), [ size ] ->
    (* our memory model zero-initialises, so calloc = malloc *)
    let size = Int64.to_int (as_int size) in
    if mc.in_kernel then error "malloc on the device";
    let base = Memspace.alloc ~tag:"heap" mc.host size in
    flush_time mc;
    mc.now <- mc.now +. 100.0;
    if mc.mode = Split then Runtime.register_heap mc.rt ~base ~size;
    Some (VI (Int64.of_int base))
  | "realloc", [ p; size ] ->
    (* the run-time wrapper: the old unit leaves the allocation map, the
       new one enters it (Section 3.1) *)
    if mc.in_kernel then error "realloc on the device";
    let old_base = Int64.to_int (as_int p) in
    let size = Int64.to_int (as_int size) in
    let base = Memspace.alloc ~tag:"heap" mc.host size in
    flush_time mc;
    mc.now <- mc.now +. 150.0;
    if old_base <> 0 then begin
      let _, old_size = Memspace.unit_bounds mc.host old_base in
      Memspace.blit ~src:mc.host ~src_addr:old_base ~dst:mc.host
        ~dst_addr:base ~len:(min old_size size);
      if mc.mode = Split then begin
        mc.rt.Runtime.now <- mc.now;
        Runtime.unregister_heap mc.rt ~base:old_base;
        mc.now <- mc.rt.Runtime.now
      end;
      Memspace.free mc.host old_base
    end;
    if mc.mode = Split then Runtime.register_heap mc.rt ~base ~size;
    Some (VI (Int64.of_int base))
  | "free", [ p ] ->
    let base = Int64.to_int (as_int p) in
    if mc.mode = Split then begin
      flush_time mc;
      mc.rt.Runtime.now <- mc.now;
      Runtime.unregister_heap mc.rt ~base;
      mc.now <- mc.rt.Runtime.now
    end;
    Memspace.free mc.host base;
    None
  (* ---- explicit driver API (manual management, Listing 1 style) ---- *)
  | "gpu_malloc", [ size ] ->
    let size = Int64.to_int (as_int size) in
    if mc.in_kernel then error "gpu_malloc on the device";
    flush_time mc;
    if mc.mode = Split then begin
      let d, now = Device.mem_alloc mc.dev ~now:mc.now size in
      mc.now <- now;
      Some (VI (Int64.of_int d))
    end
    else
      (* unified memory: device allocations are just host allocations *)
      Some (VI (Int64.of_int (Memspace.alloc ~tag:"gpu" mc.host size)))
  | "gpu_free", [ p ] ->
    let d = Int64.to_int (as_int p) in
    flush_time mc;
    if mc.mode = Split then mc.now <- Device.mem_free mc.dev ~now:mc.now d
    else Memspace.free mc.host d;
    None
  | "gpu_memcpy_h2d", [ dst; src; len ] ->
    let dst = Int64.to_int (as_int dst)
    and src = Int64.to_int (as_int src)
    and len = Int64.to_int (as_int len) in
    flush_time mc;
    if mc.mode = Split then
      mc.now <-
        Device.memcpy_h_to_d mc.dev ~now:mc.now ~host:mc.host ~host_addr:src
          ~dev_addr:dst ~len
    else Memspace.blit ~src:mc.host ~src_addr:src ~dst:mc.host ~dst_addr:dst ~len;
    None
  | "gpu_memcpy_d2h", [ dst; src; len ] ->
    let dst = Int64.to_int (as_int dst)
    and src = Int64.to_int (as_int src)
    and len = Int64.to_int (as_int len) in
    flush_time mc;
    if mc.mode = Split then
      mc.now <-
        Device.memcpy_d_to_h mc.dev ~now:mc.now ~host:mc.host ~host_addr:dst
          ~dev_addr:src ~len
    else Memspace.blit ~src:mc.host ~src_addr:src ~dst:mc.host ~dst_addr:dst ~len;
    None
  | "strlen", [ p ] ->
    let addr = Int64.to_int (as_int p) in
    let s = Memspace.load_string (space mc) addr in
    (* charge proportional work *)
    for _ = 1 to String.length s do tick mc done;
    Some (VI (Int64.of_int (String.length s)))
  | "print_i64", [ v ] ->
    Buffer.add_string mc.out (Int64.to_string (as_int v));
    Buffer.add_char mc.out '\n';
    None
  | "print_f64", [ v ] ->
    Buffer.add_string mc.out (Printf.sprintf "%.6g" (as_float v));
    Buffer.add_char mc.out '\n';
    None
  | "prints", [ p ] ->
    let addr = Int64.to_int (as_int p) in
    Buffer.add_string mc.out (Memspace.load_string (space mc) addr);
    Buffer.add_char mc.out '\n';
    None
  | "pow", [ a; b ] -> Some (VF (Float.pow (as_float a) (as_float b)))
  | _ when math1 name <> None -> (
    match argv with
    | [ a ] -> Some (VF ((Option.get (math1 name)) (as_float a)))
    | _ -> error "%s expects one argument" name)
  (* ---- the CGCM run-time library ---- *)
  | _ when Ir.Intrinsic.is_cgcm name -> dispatch_cgcm mc name argv
  | _ -> (
    match Hashtbl.find_opt mc.funcs name with
    | Some f ->
      if f.Ir.fkind = Ir.Kernel then error "direct call to kernel %s" name;
      exec_func mc f (Array.of_list argv)
    | None -> error "call to unknown function '%s'" name)

and dispatch_cgcm mc name argv : rtval option =
  let ptr_of v = Int64.to_int (as_int v) in
  match (mc.mode, name, argv) with
  (* Unified mode: the runtime is an identity — used to differentially
     test that the compiler transformations preserve semantics. The
     inspector-executor baseline runs unmanaged modules, but treat stray
     cgcm calls the same way. *)
  | (Unified | Inspector_executor), ("cgcm.map" | "cgcm.map_array"), [ p ] ->
    Some p
  | (Unified | Inspector_executor), _, _ -> None
  | Split, "cgcm.map", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    let d = Runtime.map mc.rt (ptr_of p) in
    mc.now <- mc.rt.Runtime.now;
    Some (VI (Int64.of_int d))
  | Split, "cgcm.unmap", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    Runtime.unmap mc.rt (ptr_of p);
    mc.now <- mc.rt.Runtime.now;
    None
  | Split, "cgcm.release", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    Runtime.release mc.rt (ptr_of p);
    mc.now <- mc.rt.Runtime.now;
    None
  | Split, "cgcm.map_array", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    let d = Runtime.map_array mc.rt (ptr_of p) in
    mc.now <- mc.rt.Runtime.now;
    Some (VI (Int64.of_int d))
  | Split, "cgcm.unmap_array", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    Runtime.unmap_array mc.rt (ptr_of p);
    mc.now <- mc.rt.Runtime.now;
    None
  | Split, "cgcm.release_array", [ p ] ->
    flush_time mc;
    mc.rt.Runtime.now <- mc.now;
    Runtime.release_array mc.rt (ptr_of p);
    mc.now <- mc.rt.Runtime.now;
    None
  | Split, _, _ -> error "unknown cgcm intrinsic '%s'" name

and exec_launch mc ~kernel ~trip ~args =
  let f =
    match Hashtbl.find_opt mc.funcs kernel with
    | Some f when f.Ir.fkind = Ir.Kernel -> f
    | _ -> error "launch of unknown kernel %s" kernel
  in
  if trip > 0 then begin
    flush_time mc;
    if mc.mode = Split then Runtime.bump_epoch mc.rt;
    let saved_in_kernel = mc.in_kernel in
    let insts_before = mc.kernel_insts in
    let tracking =
      if mc.mode = Inspector_executor then begin
        let tbl = Hashtbl.create 16 in
        mc.track_units <- Some tbl;
        mc.track_threshold <- mc.host.Memspace.next;
        Some tbl
      end
      else None
    in
    mc.in_kernel <- true;
    (try
       for tid = 0 to trip - 1 do
         ignore
           (exec_func mc f
              (Array.of_list (VI (Int64.of_int tid) :: args)))
       done
     with e ->
       mc.in_kernel <- saved_in_kernel;
       mc.track_units <- None;
       raise e);
    mc.in_kernel <- saved_in_kernel;
    mc.track_units <- None;
    let insts = mc.kernel_insts - insts_before in
    match mc.mode with
    | Split ->
      mc.now <- Device.launch mc.dev ~now:mc.now ~name:kernel ~insts ~trip
    | Unified -> ()
    | Inspector_executor ->
      (* 1. sequential inspection on the CPU: replay the loop's address
            slice (a fraction of the kernel's dynamic instructions) *)
      let inspect =
        float_of_int insts *. mc.inspector_fraction
        *. mc.cost.Cost_model.cpu_cycle
      in
      mc.now <- mc.now +. inspect;
      mc.cpu_insts <-
        mc.cpu_insts + int_of_float (float_of_int insts *. mc.inspector_fraction);
      (* 2. oracle transfers: one byte per accessed allocation unit,
            batched into a single DMA each way (the scheduler is an
            oracle, so it gathers perfectly) *)
      let st = Device.stats mc.dev in
      let tbl = Option.get tracking in
      let read_units = Hashtbl.length tbl in
      let written_units =
        Hashtbl.fold (fun _ w n -> if w then n + 1 else n) tbl 0
      in
      if read_units > 0 then begin
        let dur = Cost_model.transfer_cycles mc.cost read_units in
        Trace.record mc.dev.Device.trace Trace.Htod ~start:mc.now
          ~finish:(mc.now +. dur) ~label:"ie-in" ~bytes:read_units;
        mc.now <- mc.now +. dur;
        st.Device.comm_cycles <- st.Device.comm_cycles +. dur;
        st.Device.htod_bytes <- st.Device.htod_bytes + read_units;
        st.Device.htod_count <- st.Device.htod_count + 1
      end;
      if written_units > 0 then begin
        let dur = Cost_model.transfer_cycles mc.cost written_units in
        Trace.record mc.dev.Device.trace Trace.Dtoh ~start:mc.now
          ~finish:(mc.now +. dur) ~label:"ie-out" ~bytes:written_units;
        mc.now <- mc.now +. dur;
        st.Device.comm_cycles <- st.Device.comm_cycles +. dur;
        st.Device.dtoh_bytes <- st.Device.dtoh_bytes + written_units;
        st.Device.dtoh_count <- st.Device.dtoh_count + 1
      end;
      (* 3. the kernel itself, fully synchronous (cyclic schedule) *)
      mc.now <- Device.launch mc.dev ~now:mc.now ~name:kernel ~insts ~trip;
      mc.now <- Device.sync mc.dev ~now:mc.now
  end

(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (m : Ir.modul) : result =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000_00
  in
  let trace = Trace.create ~enabled:config.trace () in
  let dev = Device.create ~trace config.cost in
  let rt = Runtime.create ~host ~dev in
  let funcs = Hashtbl.create 32 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) m.Ir.funcs;
  let mc =
    {
      m;
      host;
      dev;
      rt;
      mode = config.mode;
      cost = config.cost;
      funcs;
      globals_host = Hashtbl.create 16;
      out = Buffer.create 256;
      now = 0.0;
      pending_insts = 0;
      cpu_insts = 0;
      kernel_insts = 0;
      in_kernel = false;
      fuel = config.fuel;
      inspector_fraction = config.inspector_fraction;
      track_units = None;
      track_threshold = max_int;
      profile_on = config.profile;
      profile_counts = Hashtbl.create 16;
      cur_fn = "<toplevel>";
    }
  in
  load_globals mc;
  let main =
    match Hashtbl.find_opt funcs "main" with
    | Some f -> f
    | None -> error "module has no main function"
  in
  let res = exec_func mc main [||] in
  flush_time mc;
  mc.now <- Device.sync mc.dev ~now:mc.now;
  let st = Device.stats dev in
  {
    exit_code = (match res with Some (VI i) -> i | _ -> 0L);
    output = Buffer.contents mc.out;
    wall = mc.now;
    cpu_compute =
      float_of_int mc.cpu_insts *. config.cost.Cost_model.cpu_cycle;
    gpu = st.Device.kernel_cycles;
    comm = st.Device.comm_cycles;
    sync = st.Device.sync_cycles;
    cpu_insts = mc.cpu_insts;
    kernel_insts = mc.kernel_insts;
    dev_stats = st;
    rt_stats = rt.Runtime.stats;
    trace;
    profile =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) mc.profile_counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
  }
