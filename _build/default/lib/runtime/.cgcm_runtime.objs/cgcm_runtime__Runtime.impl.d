lib/runtime/runtime.ml: Array Cgcm_gpusim Cgcm_memory Cgcm_support Fmt Int64 List Option
