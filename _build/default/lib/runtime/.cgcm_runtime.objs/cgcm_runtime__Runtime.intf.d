lib/runtime/runtime.mli: Cgcm_gpusim Cgcm_memory Cgcm_support
