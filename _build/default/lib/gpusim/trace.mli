(** Event trace of the simulated execution. Renders the execution
    schedules of Figure 2 and lets tests assert acyclicity (e.g. "no
    device-to-host transfer inside this loop"). *)

type kind =
  | Htod  (** host-to-device transfer *)
  | Dtoh  (** device-to-host transfer *)
  | Kernel
  | Sync  (** CPU stalled waiting for the device *)

type event = {
  kind : kind;
  start : float;
  finish : float;
  label : string;
  bytes : int;
}

type t = { mutable events : event list; mutable enabled : bool }

val create : ?enabled:bool -> unit -> t
(** Disabled by default: recording is then free. *)

val record :
  t -> kind -> start:float -> finish:float -> label:string -> bytes:int -> unit

val events : t -> event list
(** In chronological (recording) order. *)

val count : t -> kind -> int

val kind_to_string : kind -> string

val render : ?width:int -> t -> string
(** Three-lane ASCII schedule in the style of Figure 2: CPU stalls [s],
    bus transfers [> <], kernels [K]. *)
