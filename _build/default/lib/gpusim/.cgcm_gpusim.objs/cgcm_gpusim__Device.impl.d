lib/gpusim/device.ml: Cgcm_memory Cost_model Hashtbl Trace
