lib/gpusim/cost_model.ml:
