lib/gpusim/trace.mli:
