lib/gpusim/trace.ml: Array Bytes Fmt List
