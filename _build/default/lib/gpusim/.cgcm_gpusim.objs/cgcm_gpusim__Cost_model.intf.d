lib/gpusim/cost_model.mli:
