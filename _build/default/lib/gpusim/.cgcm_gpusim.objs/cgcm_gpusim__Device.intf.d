lib/gpusim/device.mli: Cgcm_memory Cost_model Hashtbl Trace
