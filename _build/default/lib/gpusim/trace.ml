(* Event trace of the simulated execution, used to render the execution
   schedules of Figure 2 and to assert acyclicity properties in tests
   (e.g. "no device-to-host transfer inside this loop"). *)

type kind =
  | Htod  (* host-to-device transfer *)
  | Dtoh  (* device-to-host transfer *)
  | Kernel
  | Sync  (* CPU stalled waiting for the device *)

type event = { kind : kind; start : float; finish : float; label : string;
               bytes : int }

type t = { mutable events : event list; mutable enabled : bool }

let create ?(enabled = false) () = { events = []; enabled }

let record t kind ~start ~finish ~label ~bytes =
  if t.enabled then
    t.events <- { kind; start; finish; label; bytes } :: t.events

let events t = List.rev t.events

let kind_to_string = function
  | Htod -> "HtoD"
  | Dtoh -> "DtoH"
  | Kernel -> "Kernel"
  | Sync -> "Sync"

(* ASCII schedule with three lanes, in the style of Figure 2. *)
let render ?(width = 72) t =
  let evs = events t in
  match evs with
  | [] -> "(empty trace)\n"
  | _ ->
    let t_end =
      List.fold_left (fun m e -> max m e.finish) 0.0 evs
    in
    let t_end = if t_end <= 0.0 then 1.0 else t_end in
    let lane_of = function
      | Kernel -> 2
      | Htod | Dtoh -> 1
      | Sync -> 0
    in
    let lanes = [| Bytes.make width '.'; Bytes.make width '.'; Bytes.make width '.' |] in
    let glyph = function Kernel -> 'K' | Htod -> '>' | Dtoh -> '<' | Sync -> 's' in
    List.iter
      (fun e ->
        let a = int_of_float (e.start /. t_end *. float_of_int (width - 1)) in
        let b = int_of_float (e.finish /. t_end *. float_of_int (width - 1)) in
        let lane = lanes.(lane_of e.kind) in
        for i = max 0 a to min (width - 1) (max a b) do
          Bytes.set lane i (glyph e.kind)
        done)
      evs;
    Fmt.str "CPU stalls |%s|@.bus        |%s|@.GPU        |%s|@."
      (Bytes.to_string lanes.(0))
      (Bytes.to_string lanes.(1))
      (Bytes.to_string lanes.(2))

let count t kind =
  List.length (List.filter (fun e -> e.kind = kind) (events t))
