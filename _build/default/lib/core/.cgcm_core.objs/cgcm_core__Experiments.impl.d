lib/core/experiments.ml: Buffer Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_progs Cgcm_report Cgcm_support Cgcm_transform List Option Pipeline Printf String
