lib/core/pipeline.ml: Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_ir Cgcm_transform
