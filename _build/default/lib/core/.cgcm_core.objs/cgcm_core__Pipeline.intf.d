lib/core/pipeline.mli: Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_ir
