lib/core/validate.ml: Buffer Cgcm_interp Experiments List Printf String
