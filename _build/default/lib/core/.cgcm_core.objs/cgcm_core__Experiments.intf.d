lib/core/experiments.mli: Cgcm_gpusim Cgcm_interp Cgcm_progs
