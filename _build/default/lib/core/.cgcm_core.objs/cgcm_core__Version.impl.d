lib/core/version.ml:
