(* Machine-checkable validation of the reproduction's headline claims
   (the qualitative results EXPERIMENTS.md argues hold). Run as
   `bench/main.exe -- validate`; every violated claim is reported and the
   harness exits non-zero, which makes the claims CI-checkable rather
   than prose. *)

module E = Experiments
module Interp = Cgcm_interp.Interp

type claim = { name : string; ok : bool; detail : string }

let sp r (sel : E.prog_result -> Interp.result) =
  E.speedup ~seq:r.E.seq (sel r)

let claims (results : E.prog_result list) : claim list =
  let (g_ie, g_un, g_op), (_, _, _) = E.geomeans results in
  let all_match = List.for_all (fun r -> r.E.outputs_match) results in
  (* 1% tolerance: on programs where promotion finds nothing to hoist it
     still pays a few extra run-time calls (the paper measures at the same
     granularity and reports "never reduce performance") *)
  let opt_never_hurts =
    List.filter
      (fun r -> sp r (fun r -> r.E.opt) < 0.99 *. sp r (fun r -> r.E.unopt))
      results
  in
  let unopt_mostly_slow =
    List.length
      (List.filter (fun r -> sp r (fun r -> r.E.unopt) < 1.0) results)
  in
  let total_kernels = List.fold_left (fun a r -> a + r.E.kernels) 0 results in
  let baseline_kernels =
    List.fold_left (fun a r -> a + r.E.baseline_applicable) 0 results
  in
  let gram =
    List.find_opt (fun r -> r.E.prog.E.Registry.name = "gramschmidt") results
  in
  [
    {
      name = "all 24 programs produce identical output in every mode";
      ok = all_match;
      detail =
        String.concat ", "
          (List.filter_map
             (fun r ->
               if r.E.outputs_match then None
               else Some r.E.prog.E.Registry.name)
             results);
    };
    {
      name =
        "communication optimization never reduces performance (±1%, paper §6.3)";
      ok = opt_never_hurts = [];
      detail =
        String.concat ", "
          (List.map (fun r -> r.E.prog.E.Registry.name) opt_never_hurts);
    };
    {
      name = "unoptimized CGCM slows most programs down (paper: geomean 0.71x)";
      ok = g_un < 1.0 && unopt_mostly_slow * 2 > List.length results;
      detail = Printf.sprintf "geomean %.2fx, %d/24 below 1x" g_un
          unopt_mostly_slow;
    };
    {
      name = "optimized CGCM yields a whole-program speedup (paper: 5.36x)";
      ok = g_op > 2.0;
      detail = Printf.sprintf "geomean %.2fx" g_op;
    };
    {
      name = "optimized CGCM beats the idealized inspector-executor (paper §6.3)";
      ok = g_op > g_ie;
      detail = Printf.sprintf "opt %.2fx vs IE %.2fx" g_op g_ie;
    };
    {
      name =
        "inspector-executor beats unoptimized CGCM overall (cyclic bytes matter)";
      ok = g_ie > g_un;
      detail = Printf.sprintf "IE %.2fx vs unopt %.2fx" g_ie g_un;
    };
    {
      name = "CGCM manages every DOALL kernel; the baselines manage fewer \
              (paper: 101 vs 80)";
      ok = baseline_kernels < total_kernels;
      detail =
        Printf.sprintf "%d kernels, baselines apply to %d" total_kernels
          baseline_kernels;
    };
    {
      name = "gramschmidt: the one program where IE wins (paper §6.3)";
      ok =
        (match gram with
        | Some r -> sp r (fun r -> r.E.ie) > sp r (fun r -> r.E.opt)
        | None -> false);
      detail =
        (match gram with
        | Some r ->
          Printf.sprintf "IE %.2fx vs opt %.2fx" (sp r (fun r -> r.E.ie))
            (sp r (fun r -> r.E.opt))
        | None -> "program missing");
    };
  ]

(* Render the claim list; [true] iff everything holds. *)
let report (results : E.prog_result list) : string * bool =
  let cs = claims results in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Validation of the reproduction's headline claims:\n\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s\n        %s\n"
           (if c.ok then "ok" else "FAILED")
           c.name
           (if c.detail = "" then "-" else c.detail)))
    cs;
  let ok = List.for_all (fun c -> c.ok) cs in
  Buffer.add_string buf
    (if ok then "\nAll claims hold.\n" else "\nSOME CLAIMS FAILED.\n");
  (Buffer.contents buf, ok)
