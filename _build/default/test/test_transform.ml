(* Tests for the compiler transformations: communication management
   insertion, map promotion (Listing 3 -> Listing 4), alloca promotion,
   glue kernels, and the DOALL outliner. *)

module Ir = Cgcm_ir.Ir
module Parser = Cgcm_frontend.Parser
module Doall = Cgcm_frontend.Doall
module Lower = Cgcm_frontend.Lower
module Comm_mgmt = Cgcm_transform.Comm_mgmt
module Map_promotion = Cgcm_transform.Map_promotion
module Alloca_promotion = Cgcm_transform.Alloca_promotion
module Glue_kernels = Cgcm_transform.Glue_kernels
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Loops = Cgcm_analysis.Loops

let check = Alcotest.check

let compile_to ?(parallel = Doall.Auto) level src =
  (Pipeline.compile ~parallel ~level src).Pipeline.modul

(* Count calls to [name] in function [f], optionally restricted to loops. *)
let count_calls ?(in_loops = false) (f : Ir.func) name =
  let loops = Loops.analyze f in
  let in_a_loop bi =
    Array.exists (fun l -> Loops.in_loop l bi) loops.Loops.loops
  in
  Ir.fold_instrs
    (fun acc bi i ->
      match i with
      | Ir.Call (_, n, _) when n = name && ((not in_loops) || in_a_loop bi) ->
        acc + 1
      | _ -> acc)
    0 f

let count_launches (f : Ir.func) =
  Ir.fold_instrs
    (fun acc _ i -> match i with Ir.Launch _ -> acc + 1 | _ -> acc)
    0 f

(* ------------------------------------------------------------------ *)
(* DOALL outliner                                                      *)

let test_doall_positive () =
  let ast =
    Parser.parse_string
      "global float A[64];\n\
       global float B[64];\n\
       int main() { for (int i = 0; i < 64; i++) { B[i] = A[i] * 2.0; }\n\
       return 0; }"
  in
  let _, report = Doall.transform ~mode:Doall.Auto ast in
  check Alcotest.int "one kernel" 1 (List.length report.Doall.kernels)

let test_doall_negatives () =
  let count src =
    let ast = Parser.parse_string src in
    let _, report = Doall.transform ~mode:Doall.Auto ast in
    List.length report.Doall.kernels
  in
  (* loop-carried scalar dependence (reduction) *)
  check Alcotest.int "reduction" 0
    (count
       "global float A[64];\n\
        int main() { float s = 0.0;\n\
        for (int i = 0; i < 64; i++) { s = s + A[i]; } print(s); return 0; }");
  (* cross-iteration array dependence *)
  check Alcotest.int "recurrence" 0
    (count
       "global float A[64];\n\
        int main() {\n\
        for (int i = 1; i < 64; i++) { A[i] = A[i - 1] + 1.0; } return 0; }");
  (* may-alias through pointers *)
  check Alcotest.int "pointer alias" 0
    (count
       "int main() { float* p = (float*) malloc(512);\n\
        float* q = p;\n\
        for (int i = 0; i < 8; i++) { p[i] = q[i] + 1.0; } return 0; }");
  (* non-pure call in the body *)
  check Alcotest.int "call in body" 0
    (count
       "global float A[8];\n\
        int main() { for (int i = 0; i < 8; i++) { print(i); A[i] = 0.0; }\n\
        return 0; }");
  (* same element written every iteration *)
  check Alcotest.int "same cell" 0
    (count
       "global float A[8];\n\
        int main() { for (int i = 0; i < 8; i++) { A[0] = i * 1.0; }\n\
        return 0; }")

let test_doall_stencil_two_arrays () =
  (* jacobi-style: reads A at i-1/i+1, writes B: fine because the roots
     are distinct arrays *)
  let ast =
    Parser.parse_string
      "global float A[64];\nglobal float B[64];\n\
       int main() {\n\
       for (int i = 1; i < 63; i++) { B[i] = A[i-1] + A[i] + A[i+1]; }\n\
       return 0; }"
  in
  let _, report = Doall.transform ~mode:Doall.Auto ast in
  check Alcotest.int "stencil parallel" 1 (List.length report.Doall.kernels)

let test_doall_stencil_same_array_rejected () =
  let ast =
    Parser.parse_string
      "global float A[64];\n\
       int main() {\n\
       for (int i = 1; i < 63; i++) { A[i] = A[i-1] + A[i+1]; }\n\
       return 0; }"
  in
  let _, report = Doall.transform ~mode:Doall.Auto ast in
  check Alcotest.int "rejected" 0 (List.length report.Doall.kernels)

let test_doall_2d_rows () =
  (* row-disjoint writes with a constant inner bound parallelize, and the
     perfect nest flattens into one 2-D kernel *)
  let ast =
    Parser.parse_string
      "global float A[16][16];\n\
       int main() {\n\
       for (int i = 0; i < 16; i++) {\n\
       for (int j = 0; j < 16; j++) { A[i][j] = i + j * 2.0; } }\n\
       return 0; }"
  in
  let ast', report = Doall.transform ~mode:Doall.Auto ast in
  check Alcotest.int "one kernel" 1 (List.length report.Doall.kernels);
  (* the launch trip count must be 16*16 = 256 *)
  let m = Lower.lower_program ast' in
  let main = Ir.find_func_exn m "main" in
  check Alcotest.int "one launch" 1 (count_launches main)

let test_doall_manual_annotation () =
  (* the conservative test rejects this column-interleaved write, but the
     annotation forces it *)
  let src kw =
    "global float A[8][8];\n\
     int main() {\n" ^ kw
    ^ " for (int j = 0; j < 8; j++) {\n\
       for (int i = 1; i < 8; i++) { A[i][j] = A[i-1][j] * 0.5; } }\n\
       return 0; }"
  in
  let auto_count mode s =
    let _, r = Doall.transform ~mode (Parser.parse_string s) in
    List.length r.Doall.kernels
  in
  check Alcotest.int "auto rejects" 0 (auto_count Doall.Auto (src ""));
  check Alcotest.int "annotation accepted" 1
    (auto_count Doall.Auto (src "parallel"));
  check Alcotest.int "manual-only honours annotation" 1
    (auto_count Doall.Manual_only (src "parallel"))

let test_doall_off_strips () =
  let ast =
    Parser.parse_string
      "global float A[8];\n\
       int main() { parallel for (int i = 0; i < 8; i++) { A[i] = 1.0; }\n\
       return 0; }"
  in
  let ast', report = Doall.transform ~mode:Doall.Off ast in
  check Alcotest.int "no kernels" 0 (List.length report.Doall.kernels);
  (* lowering must not see any 'parallel' annotation *)
  ignore (Lower.lower_program ast')

let test_doall_downward_loop () =
  let src =
    "global float A[32];\n\
     int main() { for (int i = 31; i >= 0; i--) { A[i] = i * 1.0; }\n\
     float s = 0.0; for (int i = 0; i < 32; i++) { s = s + A[i]; }\n\
     print(s); return 0; }"
  in
  let ast, report = Doall.transform ~mode:Doall.Auto (Parser.parse_string src) in
  check Alcotest.int "downward kernel" 1 (List.length report.Doall.kernels);
  ignore ast;
  (* and it computes the same thing *)
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.string "output" seq.Interp.output opt.Interp.output

(* ------------------------------------------------------------------ *)
(* Communication management                                            *)

let managed_example =
  "global float A[64];\n\
   global float B[64];\n\
   int main() {\n\
   for (int i = 0; i < 64; i++) { A[i] = i * 0.5; B[i] = 0.0; }\n\
   for (int t = 0; t < 4; t++) {\n\
   for (int i = 0; i < 64; i++) { B[i] = B[i] + A[i]; } }\n\
   float s = 0.0; for (int i = 0; i < 64; i++) { s = s + B[i]; }\n\
   print(s); return 0; }"

let test_comm_mgmt_inserts_calls () =
  let m = compile_to Pipeline.Managed managed_example in
  let main = Ir.find_func_exn m "main" in
  let maps = count_calls main Ir.Intrinsic.map in
  let unmaps = count_calls main Ir.Intrinsic.unmap in
  let releases = count_calls main Ir.Intrinsic.release in
  check Alcotest.bool "maps inserted" true (maps > 0);
  check Alcotest.int "map/release balance" maps releases;
  check Alcotest.int "map/unmap balance" maps unmaps

let test_comm_mgmt_scalars_unmanaged () =
  (* scalar launch operands are not wrapped in map calls *)
  let m =
    compile_to Pipeline.Managed
      "global float A[8];\n\
       int main() { float v = 2.0;\n\
       for (int i = 0; i < 8; i++) { A[i] = v * i; } return 0; }"
  in
  let main = Ir.find_func_exn m "main" in
  (* only the global A needs communication: one map per launch site *)
  check Alcotest.int "one map" 1 (count_calls main Ir.Intrinsic.map)

let test_unmanaged_split_fails () =
  (* without management, launches carry CPU pointers: device execution
     must fault (it is only correct in unified memory) *)
  let m = compile_to Pipeline.Unmanaged managed_example in
  match Interp.run m with
  | exception _ -> ()
  | r ->
    (* if it does not fault, it must at least produce wrong output versus
       the sequential run (a stale-data symptom, cf. Section 1) *)
    let _, seq = Pipeline.run Pipeline.Sequential managed_example in
    check Alcotest.bool "unmanaged split is wrong" true
      (r.Interp.output <> seq.Interp.output)

(* ------------------------------------------------------------------ *)
(* Map promotion                                                       *)

let test_map_promotion_listing4 () =
  (* Listing 3 -> Listing 4: after promotion no unmap stays inside the
     loop, and a map is available in the preheader *)
  let m = compile_to Pipeline.Managed managed_example in
  Map_promotion.run m;
  let main = Ir.find_func_exn m "main" in
  check Alcotest.int "no unmap in loops" 0
    (count_calls ~in_loops:true main Ir.Intrinsic.unmap);
  (* translation maps stay inside the loop (they are copies, not moves) *)
  check Alcotest.bool "translation maps remain" true
    (count_calls ~in_loops:true main Ir.Intrinsic.map > 0)

let test_map_promotion_transfers () =
  (* optimized runs transfer each array roughly once per direction;
     unoptimized transfers every iteration *)
  let _, unopt = Pipeline.run Pipeline.Cgcm_unoptimized managed_example in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized managed_example in
  let htod r = r.Interp.dev_stats.Cgcm_gpusim.Device.htod_count in
  let dtoh r = r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count in
  check Alcotest.bool "cyclic pattern" true (htod unopt > 6);
  (* the standalone init launch re-uploads once; the time loop itself is
     acyclic, so at most two uploads per array overall *)
  check Alcotest.bool "acyclic HtoD" true (htod opt <= 5);
  check Alcotest.bool "acyclic DtoH" true (dtoh opt <= 4);
  check Alcotest.bool "far fewer transfers" true (htod opt * 2 < htod unopt);
  check Alcotest.string "same output" unopt.Interp.output opt.Interp.output

let test_map_promotion_blocked_by_cpu_access () =
  (* the CPU reads B inside the loop: promotion of B must not remove the
     per-iteration unmap (modOrRef), and the output stays correct *)
  let src =
    "global float B[32];\n\
     int main() {\n\
     float s = 0.0;\n\
     for (int t = 0; t < 3; t++) {\n\
     for (int i = 0; i < 32; i++) { B[i] = B[i] + 1.0; }\n\
     s = s + B[0];\n\
     }\n\
     print(s); return 0; }"
  in
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.string "correct despite CPU reads" seq.Interp.output
    opt.Interp.output;
  (* B must still be copied back every iteration: > 1 DtoH *)
  check Alcotest.bool "still cyclic" true
    (opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count >= 3)

let test_function_level_promotion () =
  (* maps climb from the callee to the caller's loop *)
  let src =
    "global float A[32];\n\
     void bump() { for (int i = 0; i < 32; i++) { A[i] = A[i] + 1.0; } }\n\
     int main() {\n\
     for (int i = 0; i < 32; i++) { A[i] = 0.0; }\n\
     for (int t = 0; t < 5; t++) { bump(); }\n\
     print(A[7]); return 0; }"
  in
  let m = compile_to Pipeline.Optimized src in
  let bump = Ir.find_func_exn m "bump" in
  check Alcotest.int "no unmap left in callee" 0
    (count_calls bump Ir.Intrinsic.unmap);
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.string "output" seq.Interp.output opt.Interp.output;
  (* one HtoD for A overall *)
  check Alcotest.bool "single upload" true
    (opt.Interp.dev_stats.Cgcm_gpusim.Device.htod_count <= 2)

(* ------------------------------------------------------------------ *)
(* Glue kernels                                                        *)

let glue_example =
  "global float q[1];\n\
   global float data[64];\n\
   int main() {\n\
   q[0] = 1.0;\n\
   for (int t = 0; t < 6; t++) {\n\
   parallel for (int i = 0; i < 64; i++) { data[i] = data[i] + q[0]; }\n\
   q[0] = q[0] * 0.5;\n\
   parallel for (int i = 0; i < 64; i++) { data[i] = data[i] * 1.25; }\n\
   }\n\
   float s = 0.0; for (int i = 0; i < 64; i++) { s = s + data[i]; }\n\
   print(s); return 0; }"

let test_glue_kernels_created () =
  let m = compile_to Pipeline.Optimized glue_example in
  let glue =
    List.filter
      (fun (f : Ir.func) ->
        f.Ir.fkind = Ir.Kernel
        && String.length f.Ir.fname >= 6
        && String.sub f.Ir.fname 0 6 = "__glue")
      m.Ir.funcs
  in
  check Alcotest.bool "glue kernel exists" true (glue <> [])

let test_glue_correct_and_acyclic () =
  let _, seq = Pipeline.run Pipeline.Sequential glue_example in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized glue_example in
  check Alcotest.string "output" seq.Interp.output opt.Interp.output;
  (* with the glue kernel, the time loop has no transfers at all *)
  check Alcotest.bool "acyclic" true
    (opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count <= 3)

(* ------------------------------------------------------------------ *)
(* Alloca promotion                                                    *)

let alloca_example =
  "global float out[32];\n\
   void work(float seedv) {\n\
   float tmp[32];\n\
   parallel for (int i = 0; i < 32; i++) { tmp[i] = seedv + i; }\n\
   parallel for (int i = 0; i < 32; i++) { out[i] = out[i] + tmp[i]; }\n\
   }\n\
   int main() {\n\
   for (int t = 0; t < 4; t++) { work(t * 1.0); }\n\
   float s = 0.0; for (int i = 0; i < 32; i++) { s = s + out[i]; }\n\
   print(s); return 0; }"

let test_alloca_promotion () =
  let m = compile_to Pipeline.Optimized alloca_example in
  let work = Ir.find_func_exn m "work" in
  (* the escaping local was promoted: work gained a parameter and lost
     the alloca *)
  check Alcotest.int "extra parameter" 2 work.Ir.nargs;
  let allocas =
    Ir.fold_instrs
      (fun acc _ i ->
        match i with
        | Ir.Alloca (_, _, info) when info.Ir.aregistered -> acc + 1
        | _ -> acc)
      0 work
  in
  check Alcotest.int "registered alloca moved out" 0 allocas;
  let _, seq = Pipeline.run Pipeline.Sequential alloca_example in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized alloca_example in
  check Alcotest.string "output" seq.Interp.output opt.Interp.output

(* ------------------------------------------------------------------ *)
(* Pass pipeline invariants                                            *)

let test_passes_idempotent_validity () =
  (* running the optimizer twice keeps the module verifiable and the
     semantics intact *)
  let m = compile_to Pipeline.Optimized managed_example in
  Cgcm_transform.Glue_kernels.run m;
  Alloca_promotion.run m;
  Map_promotion.run m;
  Cgcm_ir.Verifier.verify_modul m;
  let r = Interp.run m in
  let _, seq = Pipeline.run Pipeline.Sequential managed_example in
  check Alcotest.string "still correct" seq.Interp.output r.Interp.output

let tests =
  [
    Alcotest.test_case "doall positive" `Quick test_doall_positive;
    Alcotest.test_case "doall negatives" `Quick test_doall_negatives;
    Alcotest.test_case "doall stencil two arrays" `Quick
      test_doall_stencil_two_arrays;
    Alcotest.test_case "doall stencil same array" `Quick
      test_doall_stencil_same_array_rejected;
    Alcotest.test_case "doall 2-D flattening" `Quick test_doall_2d_rows;
    Alcotest.test_case "doall manual annotation" `Quick
      test_doall_manual_annotation;
    Alcotest.test_case "doall off strips annotations" `Quick
      test_doall_off_strips;
    Alcotest.test_case "doall downward loop" `Quick test_doall_downward_loop;
    Alcotest.test_case "comm mgmt inserts calls" `Quick
      test_comm_mgmt_inserts_calls;
    Alcotest.test_case "comm mgmt leaves scalars" `Quick
      test_comm_mgmt_scalars_unmanaged;
    Alcotest.test_case "unmanaged split is incorrect" `Quick
      test_unmanaged_split_fails;
    Alcotest.test_case "map promotion (Listing 4)" `Quick
      test_map_promotion_listing4;
    Alcotest.test_case "map promotion transfer counts" `Quick
      test_map_promotion_transfers;
    Alcotest.test_case "map promotion blocked by modOrRef" `Quick
      test_map_promotion_blocked_by_cpu_access;
    Alcotest.test_case "function-level promotion" `Quick
      test_function_level_promotion;
    Alcotest.test_case "glue kernels created" `Quick test_glue_kernels_created;
    Alcotest.test_case "glue kernels acyclic + correct" `Quick
      test_glue_correct_and_acyclic;
    Alcotest.test_case "alloca promotion" `Quick test_alloca_promotion;
    Alcotest.test_case "repeated optimization is safe" `Quick
      test_passes_idempotent_validity;
  ]
