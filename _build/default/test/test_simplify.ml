(* Tests for the IR simplifier: constant folding, algebraic identities,
   dead-code elimination, effect preservation. *)

module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Simplify = Cgcm_transform.Simplify
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp

let check = Alcotest.check

let instr_count (f : Ir.func) =
  Ir.fold_instrs (fun n _ _ -> n + 1) 0 f

let mk_module f = { Ir.globals = []; funcs = [ f ] }

let test_constant_folding () =
  let b = Builder.create ~name:"f" ~nargs:0 ~kind:Ir.Cpu in
  (* ((64 - 0) + 0) / 1  — the outliner's trip chain *)
  let a = Builder.binop b Ir.Sub (Ir.imm 64) (Ir.imm 0) in
  let c = Builder.binop b Ir.Add a (Ir.imm 0) in
  let d = Builder.binop b Ir.Div c (Ir.imm 1) in
  Builder.ret b (Some d);
  let f = Builder.finish b in
  Simplify.run (mk_module f);
  check Alcotest.int "chain folded away" 0 (instr_count f);
  (match f.Ir.blocks.(0).Ir.term with
  | Ir.Ret (Some (Ir.Imm_int 64L)) -> ()
  | _ -> Alcotest.fail "terminator not folded")

let test_identities () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let x = Ir.Reg 0 in
  let a = Builder.binop b Ir.Add x (Ir.imm 0) in
  let m = Builder.binop b Ir.Mul a (Ir.imm 1) in
  let z = Builder.binop b Ir.Mul m (Ir.imm 0) in
  let r = Builder.binop b Ir.Add m z in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  Simplify.run (mk_module f);
  check Alcotest.int "identities collapse" 0 (instr_count f);
  (match f.Ir.blocks.(0).Ir.term with
  | Ir.Ret (Some (Ir.Reg 0)) -> ()
  | t -> Alcotest.failf "expected ret %%r0, got %s" (Fmt.str "%a" Cgcm_ir.Printer.pp_term t))

let test_division_by_zero_not_folded () =
  let b = Builder.create ~name:"f" ~nargs:0 ~kind:Ir.Cpu in
  let d = Builder.binop b Ir.Div (Ir.imm 5) (Ir.imm 0) in
  Builder.ret b (Some d);
  let f = Builder.finish b in
  Simplify.run (mk_module f);
  (* the faulting division must survive so execution still traps *)
  check Alcotest.int "kept" 1 (instr_count f)

let test_effects_preserved () =
  let b = Builder.create ~name:"f" ~nargs:0 ~kind:Ir.Cpu in
  let slot = Builder.alloca b (Ir.imm 8) in
  Builder.store b Ir.I64 slot (Ir.imm 1);
  let dead = Builder.binop b Ir.Add (Ir.imm 2) (Ir.imm 3) in
  ignore dead;
  Builder.call_void b "print_i64" [ Ir.imm 9 ];
  Builder.ret b None;
  let f = Builder.finish b in
  Simplify.run (mk_module f);
  (* alloca, store and call stay; the dead add goes *)
  check Alcotest.int "three effects remain" 3 (instr_count f)

let test_float_folding () =
  let b = Builder.create ~name:"f" ~nargs:0 ~kind:Ir.Cpu in
  let a = Builder.binop b Ir.Fmul (Ir.Imm_float 2.0) (Ir.Imm_float 3.5) in
  let c = Builder.unop b Ir.Float_to_int a in
  Builder.ret b (Some c);
  let f = Builder.finish b in
  Simplify.run (mk_module f);
  (match f.Ir.blocks.(0).Ir.term with
  | Ir.Ret (Some (Ir.Imm_int 7L)) -> ()
  | _ -> Alcotest.fail "float chain not folded")

let test_end_to_end_equivalence () =
  (* simplification must not change observable behaviour on a program
     exercising every operator *)
  let src =
    "global float x[16];\n\
     int main() {\n\
     int a = (16 - 0 + 0) / 1 * 2;\n\
     float b = 2.0 * 3.5 - 1.0;\n\
     for (int i = 0; i < 16; i++) { x[i] = i * b + a; }\n\
     float s = 0.0;\n\
     for (int i = 0; i < 16; i++) { s = s + x[i]; }\n\
     print(s); print(a); return 0; }"
  in
  let _, seq = Pipeline.run Pipeline.Sequential src in
  check Alcotest.string "values" "1232\n32\n" seq.Interp.output

let tests =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "algebraic identities" `Quick test_identities;
    Alcotest.test_case "div-by-zero kept" `Quick test_division_by_zero_not_folded;
    Alcotest.test_case "effects preserved" `Quick test_effects_preserved;
    Alcotest.test_case "float folding" `Quick test_float_folding;
    Alcotest.test_case "end-to-end equivalence" `Quick
      test_end_to_end_equivalence;
  ]
