(* Deeper scenario tests: multi-level promotion climbing, invariant-chain
   cloning, multi-exit loops, inference failure modes, heap reallocation,
   and smoke tests of the experiment drivers. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Typeinfer = Cgcm_analysis.Typeinfer

let check = Alcotest.check

let run_pair src =
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.string "output matches sequential" seq.Interp.output
    opt.Interp.output;
  (seq, opt)

let htod (r : Interp.result) = r.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
let dtoh (r : Interp.result) = r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count

(* ------------------------------------------------------------------ *)

let test_promotion_climbs_two_loops () =
  (* kernel inside a doubly nested sequential loop: maps must climb both
     levels, so transfer counts are independent of both trip counts *)
  let src t1 t2 =
    Printf.sprintf
      "global float x[128];\n\
       int main() {\n\
       for (int i = 0; i < 128; i++) { x[i] = i * 0.5; }\n\
       for (int a = 0; a < %d; a++) {\n\
       for (int b = 0; b < %d; b++) {\n\
       parallel for (int i = 0; i < 128; i++) { x[i] = x[i] * 1.001; }\n\
       }\n\
       }\n\
       float s = 0.0;\n\
       for (int i = 0; i < 128; i++) { s = s + x[i]; }\n\
       print(s); return 0; }"
      t1 t2
  in
  let _, small = run_pair (src 2 2) in
  let _, big = run_pair (src 5 7) in
  check Alcotest.int "HtoD independent of trip counts" (htod small) (htod big);
  check Alcotest.int "DtoH independent of trip counts" (dtoh small) (dtoh big)

let test_promotion_invariant_chain () =
  (* the mapped pointer is reloaded from a global pointer cell inside the
     loop: promotion must clone the load into the preheader *)
  let src =
    "global float* buf;\n\
     int main() {\n\
     buf = (float*) malloc(64 * sizeof(float));\n\
     parallel for (int i = 0; i < 64; i++) { buf[i] = i * 1.5; }\n\
     for (int t = 0; t < 9; t++) {\n\
     parallel for (int i = 0; i < 64; i++) { buf[i] = buf[i] + 1.0; }\n\
     }\n\
     float s = 0.0;\n\
     for (int i = 0; i < 64; i++) { s = s + buf[i]; }\n\
     print(s); return 0; }"
  in
  let _, opt = run_pair src in
  (* the pointee (64 floats) crosses at most twice per direction *)
  check Alcotest.bool "no per-iteration transfers" true (dtoh opt <= 4)

let test_promotion_multi_exit_loop () =
  (* a data-dependent break gives the loop two exits; unmap+release land
     on every exit edge and the result is still correct *)
  let src =
    "global float x[64];\n\
     global int flag[1];\n\
     int main() {\n\
     for (int i = 0; i < 64; i++) { x[i] = i * 1.0; }\n\
     int t = 0;\n\
     while (t < 20) {\n\
     parallel for (int i = 0; i < 64; i++) { x[i] = x[i] + 1.0; }\n\
     t = t + 1;\n\
     if (t == 7) { break; }\n\
     }\n\
     float s = 0.0;\n\
     for (int i = 0; i < 64; i++) { s = s + x[i]; }\n\
     print(s); print(t); return 0; }"
  in
  ignore (run_pair src)

let test_promotion_respects_free () =
  (* the unit is freed and reallocated between launches: pointsToChanges /
     modOrRef must keep the maps cyclic, and the program stays correct *)
  let src =
    "global float* buf;\n\
     int main() {\n\
     float total = 0.0;\n\
     for (int t = 0; t < 4; t++) {\n\
     buf = (float*) malloc(32 * sizeof(float));\n\
     parallel for (int i = 0; i < 32; i++) { buf[i] = i + t * 10.0; }\n\
     total = total + buf[5];\n\
     free(buf);\n\
     }\n\
     print(total); return 0; }"
  in
  ignore (run_pair src)

let test_realloc () =
  let src =
    "int main() {\n\
     int* a = (int*) malloc(4 * sizeof(int));\n\
     for (int i = 0; i < 4; i++) { a[i] = i + 1; }\n\
     a = (int*) realloc(a, 8 * sizeof(int));\n\
     for (int i = 4; i < 8; i++) { a[i] = (i + 1) * 10; }\n\
     parallel for (int i = 0; i < 8; i++) { a[i] = a[i] * 2; }\n\
     int s = 0;\n\
     for (int i = 0; i < 8; i++) { s = s + a[i]; }\n\
     print(s);\n\
     free(a);\n\
     return 0; }"
  in
  let _, opt = run_pair src in
  (* 2*(1+2+3+4) + 2*(50+60+70+80) = 20 + 520 *)
  check Alcotest.string "value" "540\n" opt.Interp.output

let test_calloc_zeroed () =
  let src =
    "int main() {\n\
     int* a = (int*) calloc(4 * sizeof(int));\n\
     int s = 0;\n\
     for (int i = 0; i < 4; i++) { s = s + a[i]; }\n\
     print(s); free(a); return 0; }"
  in
  let _, r = run_pair src in
  check Alcotest.string "zeroed" "0\n" r.Interp.output

(* ------------------------------------------------------------------ *)

let test_typeinfer_too_indirect () =
  (* three levels of indirection, constructed directly in the IR (the
     frontend rejects it earlier) *)
  let b = Builder.create ~name:"k3" ~nargs:2 ~kind:Ir.Kernel in
  let p1 = Builder.load b Ir.I64 (Ir.Reg 1) in
  let p2 = Builder.load b Ir.I64 p1 in
  let _ = Builder.load b Ir.F64 p2 in
  Builder.ret b None;
  let f = Builder.finish b in
  match Typeinfer.infer_kernel f with
  | exception Typeinfer.Too_indirect _ -> ()
  | _ -> Alcotest.fail "expected Too_indirect"

let test_glue_skips_calls () =
  (* a print between launches is not glue-able: no glue kernel appears and
     the program still runs correctly *)
  let src =
    "global float x[32];\n\
     int main() {\n\
     for (int t = 0; t < 3; t++) {\n\
     parallel for (int i = 0; i < 32; i++) { x[i] = x[i] + 1.0; }\n\
     print(t);\n\
     parallel for (int i = 0; i < 32; i++) { x[i] = x[i] * 1.5; }\n\
     }\n\
     print(x[3]); return 0; }"
  in
  let c = Pipeline.compile ~level:Pipeline.Optimized src in
  let glue =
    List.exists
      (fun (f : Ir.func) ->
        String.length f.Ir.fname >= 6 && String.sub f.Ir.fname 0 6 = "__glue")
      c.Pipeline.modul.Ir.funcs
  in
  check Alcotest.bool "no glue kernel" false glue;
  ignore (run_pair src)

let test_alloca_promotion_skips_recursive () =
  let src =
    "global float out[16];\n\
     void rec_work(int depth) {\n\
     float tmp[16];\n\
     parallel for (int i = 0; i < 16; i++) { tmp[i] = i + depth * 1.0; }\n\
     parallel for (int i = 0; i < 16; i++) { out[i] = out[i] + tmp[i]; }\n\
     if (depth > 0) { rec_work(depth - 1); }\n\
     }\n\
     int main() {\n\
     rec_work(3);\n\
     float s = 0.0;\n\
     for (int i = 0; i < 16; i++) { s = s + out[i]; }\n\
     print(s); return 0; }"
  in
  let c = Pipeline.compile ~level:Pipeline.Optimized src in
  let f = Ir.find_func_exn c.Pipeline.modul "rec_work" in
  check Alcotest.int "signature unchanged" 1 f.Ir.nargs;
  ignore (run_pair src)

let test_manual_driver_api () =
  (* Listing 1 style: explicit gpu_malloc / gpu_memcpy / gpu_free with no
     CGCM management at all; checked against the unified oracle *)
  let src =
    "global float host_data[32];
     kernel void scale(int tid, float* d) { d[tid] = d[tid] * 3.0; }
     int main() {
     for (int i = 0; i < 32; i++) { host_data[i] = i * 0.5; }
     float* d = (float*) gpu_malloc(32 * sizeof(float));
     gpu_memcpy_h2d((char*) d, (char*) host_data, 32 * sizeof(float));
     launch scale<32>(d);
     gpu_memcpy_d2h((char*) host_data, (char*) d, 32 * sizeof(float));
     gpu_free((char*) d);
     float s = 0.0;
     for (int i = 0; i < 32; i++) { s = s + host_data[i]; }
     print(s); return 0; }"
  in
  (* manual management composes with manual parallelization: the auto
     parallelizer must stay out of the way (its unmanaged kernels would
     write device copies the manual code never reads back) *)
  let c =
    Pipeline.compile ~parallel:Cgcm_frontend.Doall.Off
      ~level:Pipeline.Unmanaged src
  in
  let split = Interp.run c.Pipeline.modul in
  let unified =
    Interp.run
      ~config:{ Interp.default_config with Interp.mode = Interp.Unified }
      c.Pipeline.modul
  in
  check Alcotest.string "manual management is correct" unified.Interp.output
    split.Interp.output;
  check Alcotest.string "value" "744
" split.Interp.output;
  check Alcotest.int "one upload" 1
    split.Interp.dev_stats.Cgcm_gpusim.Device.htod_count

(* ------------------------------------------------------------------ *)
(* Experiment-driver smoke tests                                       *)

let test_table1_features_handled () =
  let s = Cgcm_core.Experiments.table1 () in
  let contains_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "no failures" false (contains_sub s "FAILED");
  check Alcotest.bool "struct row present" true
    (contains_sub s "array of structures")

let test_figure2_smoke () =
  let s = Cgcm_core.Experiments.figure2 () in
  check Alcotest.bool "three schedules" true
    (List.length (String.split_on_char 'K' s) > 3)

let test_run_program_driver () =
  let prog =
    {
      Cgcm_progs.Registry.name = "mini";
      suite = "test";
      source = Cgcm_progs.Polybench.gemm ~n:8 ();
      paper_limiting = Cgcm_progs.Registry.Gpu;
      paper_kernels = 4;
    }
  in
  let r = Cgcm_core.Experiments.run_program prog in
  check Alcotest.bool "outputs match" true r.Cgcm_core.Experiments.outputs_match;
  check Alcotest.int "kernel count" 4 r.Cgcm_core.Experiments.kernels;
  let fig = Cgcm_core.Experiments.figure4 [ r ] in
  check Alcotest.bool "figure renders" true (String.length fig > 100);
  let tbl = Cgcm_core.Experiments.table3 [ r ] in
  check Alcotest.bool "table renders" true (String.length tbl > 100)

let tests =
  [
    Alcotest.test_case "promotion climbs two loops" `Quick
      test_promotion_climbs_two_loops;
    Alcotest.test_case "promotion clones invariant chains" `Quick
      test_promotion_invariant_chain;
    Alcotest.test_case "promotion with multi-exit loop" `Quick
      test_promotion_multi_exit_loop;
    Alcotest.test_case "promotion respects free/realloc" `Quick
      test_promotion_respects_free;
    Alcotest.test_case "realloc" `Quick test_realloc;
    Alcotest.test_case "calloc zeroes" `Quick test_calloc_zeroed;
    Alcotest.test_case "typeinfer rejects 3 levels" `Quick
      test_typeinfer_too_indirect;
    Alcotest.test_case "glue skips calls" `Quick test_glue_skips_calls;
    Alcotest.test_case "alloca promotion skips recursion" `Quick
      test_alloca_promotion_skips_recursive;
    Alcotest.test_case "manual driver API" `Quick test_manual_driver_api;
    Alcotest.test_case "table1 features handled" `Quick
      test_table1_features_handled;
    Alcotest.test_case "figure2 smoke" `Quick test_figure2_smoke;
    Alcotest.test_case "run_program driver" `Quick test_run_program_driver;
  ]
