(* Tests for the IR-level analyses: natural loops, liveness, alias /
   underlying objects, interprocedural mod/ref, and the paper's use-based
   pointer type inference. *)

module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Loops = Cgcm_analysis.Loops
module Liveness = Cgcm_analysis.Liveness
module Alias = Cgcm_analysis.Alias
module Modref = Cgcm_analysis.Modref
module Typeinfer = Cgcm_analysis.Typeinfer
module Callgraph = Cgcm_analysis.Callgraph
module Parser = Cgcm_frontend.Parser
module Lower = Cgcm_frontend.Lower

let check = Alcotest.check

let lower src = Lower.lower_program (Parser.parse_string src)

(* A function with a doubly nested loop. *)
let nested_loops_func () =
  let m =
    lower
      "int main() {\n\
      \  int s = 0;\n\
      \  for (int i = 0; i < 4; i++) {\n\
      \    for (int j = 0; j < 4; j++) {\n\
      \      s = s + i * j;\n\
      \    }\n\
      \  }\n\
      \  return s;\n\
      }"
  in
  Ir.find_func_exn m "main"

let test_loop_detection () =
  let f = nested_loops_func () in
  let t = Loops.analyze f in
  check Alcotest.int "two loops" 2 (Array.length t.Loops.loops);
  let order = Loops.innermost_first t in
  let inner = t.Loops.loops.(List.hd order) in
  let outer = t.Loops.loops.(List.nth order 1) in
  check Alcotest.int "inner depth" 2 inner.Loops.depth;
  check Alcotest.int "outer depth" 1 outer.Loops.depth;
  check Alcotest.bool "nesting" true
    (List.for_all (fun b -> List.mem b outer.Loops.body) inner.Loops.body);
  check Alcotest.bool "strictly smaller" true
    (List.length inner.Loops.body < List.length outer.Loops.body)

let test_loop_exits_entries () =
  let f = nested_loops_func () in
  let t = Loops.analyze f in
  Array.iter
    (fun l ->
      check Alcotest.bool "has exit" true (Loops.exit_edges f l <> []);
      check Alcotest.bool "has entry" true (Loops.entry_edges f l <> []))
    t.Loops.loops

let test_no_loops () =
  let m = lower "int main() { return 1 + 2; }" in
  let f = Ir.find_func_exn m "main" in
  let t = Loops.analyze f in
  check Alcotest.int "none" 0 (Array.length t.Loops.loops)

(* ------------------------------------------------------------------ *)

let test_liveness_diamond () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let x = Builder.binop b Ir.Add (Ir.Reg 0) (Ir.imm 1) in
  Builder.cbr b (Ir.Reg 0) b1 b2;
  Builder.position_at b b1;
  Builder.ret b (Some x);
  Builder.position_at b b2;
  Builder.ret b (Some (Ir.Reg 0));
  let f = Builder.finish b in
  let lv = Liveness.compute f in
  let live0 = Liveness.live_out lv 0 in
  check Alcotest.bool "x live out of entry" true
    (Liveness.ISet.mem 1 live0);
  check Alcotest.bool "x live into b1" true
    (Liveness.ISet.mem 1 (Liveness.live_in lv 1));
  check Alcotest.bool "x not live into b2" false
    (Liveness.ISet.mem 1 (Liveness.live_in lv 2))

(* ------------------------------------------------------------------ *)

let test_underlying_objects () =
  let m =
    lower
      "global float G[8];\n\
       int main() {\n\
      \  float local[4];\n\
      \  float* h = (float*) malloc(64);\n\
      \  G[2] = 1.0;\n\
      \  local[1] = 2.0;\n\
      \  h[3] = 3.0;\n\
      \  return 0;\n\
       }"
  in
  let f = Ir.find_func_exn m "main" in
  let alias = Alias.analyze f in
  (* collect the address objects of all stores *)
  let objs =
    Ir.fold_instrs
      (fun acc _ i ->
        match i with
        | Ir.Store (Ir.F64, addr, _) -> Alias.underlying alias addr :: acc
        | _ -> acc)
      [] f
  in
  let has p = List.exists p objs in
  check Alcotest.bool "global" true
    (has (function Alias.Obj_global "G" -> true | _ -> false));
  check Alcotest.bool "alloca" true
    (has (function Alias.Obj_alloca _ -> true | _ -> false));
  check Alcotest.bool "heap" true
    (has (function Alias.Obj_heap _ -> true | _ -> false));
  (* distinct concrete objects never alias; unknown aliases everything *)
  check Alcotest.bool "no-alias" false
    (Alias.may_alias (Alias.Obj_global "G") (Alias.Obj_global "H"));
  check Alcotest.bool "unknown aliases" true
    (Alias.may_alias Alias.Obj_unknown (Alias.Obj_global "G"))

let test_escaping_allocas () =
  let m =
    lower
      "void sink(float* p) { }\n\
       int main() {\n\
      \  float kept[4];\n\
      \  float leaked[4];\n\
      \  kept[0] = 1.0;\n\
      \  sink(leaked);\n\
      \  return 0;\n\
       }"
  in
  let f = Ir.find_func_exn m "main" in
  let escaping = Alias.escaping_allocas f in
  (* 'leaked' escapes through the call; 'kept' does not. Slots for locals
     are also allocas, but only address-taken ones escape. *)
  let names =
    Ir.fold_instrs
      (fun acc _ i ->
        match i with
        | Ir.Alloca (d, _, info) when List.mem d escaping ->
          info.Ir.aname :: acc
        | _ -> acc)
      [] f
  in
  check Alcotest.bool "leaked escapes" true (List.mem "leaked" names);
  check Alcotest.bool "kept stays" false (List.mem "kept" names)

(* ------------------------------------------------------------------ *)

let test_modref_summaries () =
  let m =
    lower
      "global float A[8];\n\
       global float B[8];\n\
       void touch_a() { A[0] = 1.0; }\n\
       void chain() { touch_a(); }\n\
       void deref(float* p) { p[0] = 1.0; }\n\
       void pure_fn(int x) { print(x); }\n\
       int main() { touch_a(); chain(); deref(B); pure_fn(1); return 0; }"
  in
  let t = Modref.compute m in
  let touches callee obj = Modref.call_may_touch t ~callee obj in
  check Alcotest.bool "touch_a touches A" true
    (touches "touch_a" (Alias.Obj_global "A"));
  check Alcotest.bool "touch_a spares B" false
    (touches "touch_a" (Alias.Obj_global "B"));
  check Alcotest.bool "transitive through chain" true
    (touches "chain" (Alias.Obj_global "A"));
  check Alcotest.bool "deref is unknown" true
    (touches "deref" (Alias.Obj_global "B"));
  check Alcotest.bool "pure_fn spares A" false
    (touches "pure_fn" (Alias.Obj_global "A"));
  check Alcotest.bool "unknown callee conservative" true
    (touches "nonexistent" (Alias.Obj_global "A"))

let test_callgraph () =
  let m =
    lower
      "void leaf() {}\n\
       void mid() { leaf(); }\n\
       void rec_f() { rec_f(); }\n\
       int main() { mid(); mid(); rec_f(); return 0; }"
  in
  let cg = Callgraph.compute m in
  check Alcotest.int "mid call sites" 2
    (List.length (Callgraph.call_sites cg "mid"));
  check Alcotest.bool "recursive" true (Callgraph.is_recursive cg "rec_f");
  check Alcotest.bool "main not recursive" false
    (Callgraph.is_recursive cg "main");
  check Alcotest.bool "leaf not recursive" false
    (Callgraph.is_recursive cg "leaf")

(* ------------------------------------------------------------------ *)
(* Type inference (Section 4): classification of kernel live-ins.       *)

let infer src kernel =
  let m = lower src in
  Typeinfer.infer_kernel (Ir.find_func_exn m kernel)

let cls_testable =
  Alcotest.testable
    (fun ppf c -> Fmt.string ppf (Typeinfer.cls_to_string c))
    ( = )

let test_infer_scalar_vs_pointer () =
  let t =
    infer
      "kernel void k(int tid, float* data, int n, float scale) {\n\
      \  data[tid] = data[tid] * scale + n;\n\
       }\n\
       int main() { return 0; }"
      "k"
  in
  check cls_testable "tid scalar" Typeinfer.Scalar t.Typeinfer.param_cls.(0);
  check cls_testable "data pointer" Typeinfer.Pointer t.Typeinfer.param_cls.(1);
  check cls_testable "n scalar" Typeinfer.Scalar t.Typeinfer.param_cls.(2);
  check cls_testable "scale scalar" Typeinfer.Scalar t.Typeinfer.param_cls.(3)

let test_infer_double_pointer () =
  let t =
    infer
      "kernel void k(int tid, float** rows) {\n\
      \  float* r = rows[tid];\n\
      \  r[0] = 1.0;\n\
       }\n\
       int main() { return 0; }"
      "k"
  in
  check cls_testable "rows double" Typeinfer.Double_pointer
    t.Typeinfer.param_cls.(1)

let test_infer_through_arithmetic () =
  (* pointer-ness flows through additions and casts, not multiplications *)
  let t =
    infer
      "kernel void k(int tid, float* base, int stride) {\n\
      \  float* p = (float*)((int)base + tid * stride * 8);\n\
      \  p[0] = 0.5;\n\
       }\n\
       int main() { return 0; }"
      "k"
  in
  check cls_testable "base pointer" Typeinfer.Pointer t.Typeinfer.param_cls.(1);
  check cls_testable "stride scalar" Typeinfer.Scalar t.Typeinfer.param_cls.(2)

let test_infer_globals () =
  let t =
    infer
      "global float G[16];\n\
       global float* H;\n\
       kernel void k(int tid) {\n\
      \  G[tid] = H[tid];\n\
       }\n\
       int main() { return 0; }"
      "k"
  in
  let g = List.assoc "G" t.Typeinfer.global_cls in
  let h = List.assoc "H" t.Typeinfer.global_cls in
  check cls_testable "array global is a pointer" Typeinfer.Pointer g;
  check cls_testable "pointer global is a double pointer"
    Typeinfer.Double_pointer h

let test_infer_slot_flow () =
  (* a pointer stored into a kernel-local and reloaded keeps its class *)
  let t =
    infer
      "kernel void k(int tid, float* data) {\n\
      \  float* alias = data;\n\
      \  alias[tid] = 1.0;\n\
       }\n\
       int main() { return 0; }"
      "k"
  in
  check cls_testable "flows through locals" Typeinfer.Pointer
    t.Typeinfer.param_cls.(1)

let test_infer_unused_pointer () =
  let t =
    infer
      "kernel void k(int tid, float* unused) { int x = tid + 1; }\n\
       int main() { return 0; }"
      "k"
  in
  check cls_testable "never dereferenced" Typeinfer.Scalar
    t.Typeinfer.param_cls.(1)

let tests =
  [
    Alcotest.test_case "natural loops" `Quick test_loop_detection;
    Alcotest.test_case "loop exits/entries" `Quick test_loop_exits_entries;
    Alcotest.test_case "no loops" `Quick test_no_loops;
    Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "underlying objects" `Quick test_underlying_objects;
    Alcotest.test_case "escaping allocas" `Quick test_escaping_allocas;
    Alcotest.test_case "modref summaries" `Quick test_modref_summaries;
    Alcotest.test_case "call graph" `Quick test_callgraph;
    Alcotest.test_case "infer scalar vs pointer" `Quick
      test_infer_scalar_vs_pointer;
    Alcotest.test_case "infer double pointer" `Quick test_infer_double_pointer;
    Alcotest.test_case "infer through arithmetic" `Quick
      test_infer_through_arithmetic;
    Alcotest.test_case "infer globals" `Quick test_infer_globals;
    Alcotest.test_case "infer slot flow" `Quick test_infer_slot_flow;
    Alcotest.test_case "infer unused pointer" `Quick test_infer_unused_pointer;
  ]
