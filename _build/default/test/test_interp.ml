(* Tests for the interpreter: arithmetic and control-flow semantics,
   intrinsics, fault detection, and cost-model accounting. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Parser = Cgcm_frontend.Parser
module Lower = Cgcm_frontend.Lower

let check = Alcotest.check

(* Run a program sequentially (no parallelization). *)
let run_seq src =
  let c = Pipeline.compile ~parallel:Cgcm_frontend.Doall.Off ~level:Pipeline.Unmanaged src in
  Interp.run c.Pipeline.modul

let output src = (run_seq src).Interp.output

let test_arithmetic () =
  check Alcotest.string "int ops" "17\n"
    (output "int main() { print(3 + 4 * 5 - 6 / 2 - 10 % 7); return 0; }");
  check Alcotest.string "negative division truncates" "-2\n"
    (output "int main() { print(-7 / 3); return 0; }");
  check Alcotest.string "float" "2.5\n"
    (output "int main() { print(10.0 / 4.0); return 0; }");
  check Alcotest.string "conversion" "3\n"
    (output "int main() { print((int)3.9); return 0; }");
  check Alcotest.string "int to float" "1.5\n"
    (output "int main() { float x = 3; print(x / 2); return 0; }")

let test_comparisons_logic () =
  check Alcotest.string "short circuit and" "0\n"
    (output
       "int guard(int x) { print(x); return x; }\n\
        int main() { int r = 0 && guard(9); print(r); return 0; }");
  check Alcotest.string "short circuit or" "1\n"
    (output
       "int guard(int x) { print(x); return x; }\n\
        int main() { int r = 1 || guard(9); print(r); return 0; }");
  check Alcotest.string "ternary" "5\n"
    (output "int main() { int x = -5; print(x < 0 ? -x : x); return 0; }")

let test_control_flow () =
  check Alcotest.string "while + break" "3\n"
    (output
       "int main() { int i = 0; while (1) { i++; if (i == 3) { break; } }\n\
        print(i); return 0; }");
  check Alcotest.string "for downward" "10\n"
    (output
       "int main() { int s = 0; for (int i = 4; i >= 1; i--) { s += i; }\n\
        print(s); return 0; }");
  check Alcotest.string "nested for" "100\n"
    (output
       "int main() { int s = 0;\n\
        for (int i = 0; i < 10; i++) { for (int j = 0; j < 10; j++) { s++; } }\n\
        print(s); return 0; }")

let test_functions_recursion () =
  check Alcotest.string "fib" "55\n"
    (output
       "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
        int main() { print(fib(10)); return 0; }")

let test_arrays_pointers () =
  check Alcotest.string "2d array" "14\n"
    (output
       "global int A[3][4];\n\
        int main() { A[1][2] = 14; int* p = (int*)A; print(p[6]); return 0; }");
  check Alcotest.string "pointer arithmetic" "7\n"
    (output
       "int main() { int* p = (int*) malloc(4 * sizeof(int));\n\
        *(p + 3) = 7; print(p[3]); free(p); return 0; }");
  check Alcotest.string "address-of" "9\n"
    (output
       "int main() { int x = 1; int* p = &x; *p = 9; print(x); return 0; }")

let test_char_strings () =
  check Alcotest.string "strlen + prints" "5\nhello\n"
    (output
       "global char msg[] = \"hello\";\n\
        int main() { print(strlen(msg)); prints(msg); return 0; }");
  check Alcotest.string "char array writes" "ab\n"
    (output
       "int main() { char* s = malloc(3); s[0] = 97; s[1] = 98; s[2] = 0;\n\
        prints(s); return 0; }")

let test_math_intrinsics () =
  check Alcotest.string "sqrt" "3\n"
    (output "int main() { print(sqrt(9.0)); return 0; }");
  check Alcotest.string "pow" "8\n"
    (output "int main() { print(pow(2.0, 3.0)); return 0; }")

let test_exit_code () =
  let r = run_seq "int main() { return 42; }" in
  check Alcotest.int64 "exit" 42L r.Interp.exit_code

let expect_exec_error src =
  match run_seq src with
  | exception (Interp.Exec_error _ | Cgcm_memory.Memspace.Fault _) -> ()
  | _ -> Alcotest.fail ("expected a runtime fault: " ^ src)

let test_faults () =
  expect_exec_error "int main() { int x = 1 / 0; return x; }";
  expect_exec_error "int main() { int x = 1 % 0; return x; }";
  expect_exec_error
    "global int A[4];\nint main() { return A[5]; }";  (* out of bounds *)
  expect_exec_error
    "int main() { int* p = (int*) 123456; return *p; }";  (* wild pointer *)
  expect_exec_error
    "int main() { int* p = malloc(8); free(p); return *p; }"  (* use after free *)

let test_infinite_loop_guard () =
  let c =
    Pipeline.compile ~parallel:Cgcm_frontend.Doall.Off
      ~level:Pipeline.Unmanaged "int main() { while (1) { } return 0; }"
  in
  let config = { Interp.default_config with fuel = 100_000 } in
  match Interp.run ~config c.Pipeline.modul with
  | exception Interp.Exec_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_cost_accounting () =
  (* wall time grows with work in sequential mode *)
  let small = run_seq "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } print(s); return 0; }" in
  let large = run_seq "int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } print(s); return 0; }" in
  check Alcotest.bool "monotone cost" true (large.Interp.wall > small.Interp.wall);
  check Alcotest.bool "seq has no gpu" true (small.Interp.gpu = 0.0);
  check Alcotest.bool "seq has no comm" true (small.Interp.comm = 0.0)

let test_launch_semantics () =
  (* explicit kernels and launches; split memory needs management, so use
     the optimized pipeline end to end *)
  let src =
    "global float data[64];\n\
     kernel void fill(int tid, float v) { data[tid] = v + tid; }\n\
     int main() {\n\
    \  launch fill<64>(0.5);\n\
    \  float s = 0.0;\n\
    \  for (int i = 0; i < 64; i++) { s = s + data[i]; }\n\
    \  print(s);\n\
    \  return 0;\n\
     }"
  in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  let _, uni = Pipeline.run (Pipeline.Unified_oracle Pipeline.Optimized) src in
  check Alcotest.string "kernel result" "2048\n" opt.Interp.output;
  check Alcotest.string "unified agrees" opt.Interp.output uni.Interp.output;
  check Alcotest.int "one launch" 1
    opt.Interp.dev_stats.Cgcm_gpusim.Device.launches

let test_zero_trip_launch () =
  let src =
    "global float data[8];\n\
     kernel void fill(int tid) { data[tid] = 1.0; }\n\
     int main() { launch fill<0>(); print(data[0]); return 0; }"
  in
  let _, r = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.string "no threads ran" "0\n" r.Interp.output

let test_async_overlap () =
  (* after an async launch the CPU keeps running; a dependent unmap
     synchronises. The wall clock must be less than the sum of CPU and
     GPU time when they overlap. *)
  let src =
    "global float data[256];\n\
     kernel void fill(int tid) { \n\
    \  float acc = 0.0;\n\
    \  for (int r = 0; r < 50; r++) { acc = acc + r * 0.5; }\n\
    \  data[tid] = acc; }\n\
     int main() {\n\
    \  launch fill<256>();\n\
    \  int burn = 0;\n\
    \  for (int i = 0; i < 5000; i++) { burn += i; }\n\
    \  print(burn);\n\
    \  print(data[0]);\n\
    \  return 0;\n\
     }"
  in
  let _, r = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.bool "gpu busy" true (r.Interp.gpu > 0.0);
  (* the CPU burn loop and the kernel overlap *)
  check Alcotest.bool "overlap" true
    (r.Interp.wall < r.Interp.cpu_compute +. r.Interp.gpu +. r.Interp.comm +. 100000.0)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons + logic" `Quick test_comparisons_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions + recursion" `Quick test_functions_recursion;
    Alcotest.test_case "arrays + pointers" `Quick test_arrays_pointers;
    Alcotest.test_case "chars + strings" `Quick test_char_strings;
    Alcotest.test_case "math intrinsics" `Quick test_math_intrinsics;
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "infinite loop guard" `Quick test_infinite_loop_guard;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "launch semantics" `Quick test_launch_semantics;
    Alcotest.test_case "zero-trip launch" `Quick test_zero_trip_launch;
    Alcotest.test_case "async overlap" `Quick test_async_overlap;
  ]
