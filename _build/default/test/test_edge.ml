(* Edge-case coverage: numeric semantics, char truncation, null pointers,
   3-D arrays, parser corners, direct IR-level shift operators, deep
   recursion, and argument errors. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Parser = Cgcm_frontend.Parser

let check = Alcotest.check

let run_seq src =
  let c =
    Pipeline.compile ~parallel:Cgcm_frontend.Doall.Off
      ~level:Pipeline.Unmanaged src
  in
  Interp.run c.Pipeline.modul

let output src = (run_seq src).Interp.output

let test_int64_wraparound () =
  check Alcotest.string "max + 1 wraps" "-9223372036854775808\n"
    (output
       "int main() { int x = 9223372036854775807; print(x + 1); return 0; }")

let test_negative_modulo () =
  (* C semantics: remainder takes the sign of the dividend *)
  check Alcotest.string "-7 %% 3" "-1\n"
    (output "int main() { print(-7 % 3); return 0; }");
  check Alcotest.string "7 %% -3" "1\n"
    (output "int main() { print(7 % -3); return 0; }")

let test_float_specials () =
  check Alcotest.string "inf" "inf\n"
    (output "int main() { print(1.0 / 0.0); return 0; }");
  check Alcotest.string "nan compares false" "0\n"
    (output "int main() { float n = 0.0 / 0.0; print(n == n); return 0; }")

let test_char_truncation () =
  check Alcotest.string "store truncates to a byte" "44\n"
    (output
       "int main() { char* s = malloc(2); s[0] = 300; print(s[0]);\n\
        free(s); return 0; }")

let test_null_pointer_faults () =
  match run_seq "int main() { int* p = (int*) 0; return *p; }" with
  | exception _ -> ()
  | _ -> Alcotest.fail "null dereference must fault"

let test_3d_arrays () =
  check Alcotest.string "3-D indexing" "42\n"
    (output
       "global int T[2][3][4];\n\
        int main() { T[1][2][3] = 42; int* p = (int*) T;\n\
        print(p[1 * 12 + 2 * 4 + 3]); return 0; }")

let test_deep_recursion () =
  check Alcotest.string "fib 20" "6765\n"
    (output
       "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
        int main() { print(fib(20)); return 0; }")

let test_mutual_recursion () =
  (* no prototypes needed: all signatures are collected in a prepass *)
  check Alcotest.string "is_even 10" "1\n"
    (output
       "int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n\
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }\n\
        int main() { print(is_even(10)); return 0; }")

let test_else_if_chain () =
  check Alcotest.string "chain" "2\n"
    (output
       "int main() { int x = 15;\n\
        if (x < 10) { print(1); } else if (x < 20) { print(2); }\n\
        else { print(3); } return 0; }")

let test_sizeof_values () =
  (* CGC struct layout: chars pack, words align to 8, no tail padding *)
  check Alcotest.string "sizes" "8\n1\n8\n17\n34\n"
    (output
       "struct s { float a; int b; char c; };\n\
        int main() { print(sizeof(int)); print(sizeof(char));\n\
        print(sizeof(float*)); print(sizeof(struct s));\n\
        print(sizeof(struct s) * 2); return 0; }")

let test_global_null_init () =
  check Alcotest.string "null entries" "1\n"
    (output
       "global char a[] = \"x\";\n\
        global char* tbl[3] = {a, 0, a};\n\
        int main() { print(tbl[1] == (char*) 0); return 0; }")

let test_shift_operators_ir () =
  (* Shl/Shr are IR-level only (no CGC syntax); execute them directly *)
  let b = Builder.create ~name:"main" ~nargs:0 ~kind:Ir.Cpu in
  let x = Builder.binop b Ir.Shl (Ir.imm 3) (Ir.imm 4) in
  let y = Builder.binop b Ir.Shr x (Ir.imm 2) in
  Builder.call_void b "print_i64" [ y ];
  Builder.ret b (Some (Ir.imm 0));
  let m = { Ir.globals = []; funcs = [ Builder.finish b ] } in
  let r = Interp.run m in
  check Alcotest.string "3 << 4 >> 2" "12\n" r.Interp.output

let test_wrong_launch_arity_rejected () =
  match
    Pipeline.compile
      "global float x[4];\n\
       kernel void k(int tid, float v) { x[tid] = v; }\n\
       int main() { launch k<4>(); return 0; }"
  with
  | exception Cgcm_frontend.Lower.Sema_error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_no_trailing_newline () =
  check Alcotest.string "parses" "5\n"
    (output "int main() { print(5); return 0; }")

let test_comment_at_eof () =
  check Alcotest.string "parses" "1\n"
    (output "int main() { print(1); return 0; } // trailing comment")

let test_parallel_for_reduction_error () =
  (* annotating a genuinely dependent loop is the programmer's mistake,
     but a non-canonical annotated loop is rejected loudly *)
  match
    Pipeline.compile
      "global float x[8];\n\
       int main() { int i = 0;\n\
       parallel for (; i < 8; i++) { x[i] = 1.0; }\n\
       return 0; }"
  with
  | exception Cgcm_frontend.Doall.Doall_error _ -> ()
  | _ -> Alcotest.fail "expected Doall_error for non-canonical annotated loop"

let tests =
  [
    Alcotest.test_case "int64 wraparound" `Quick test_int64_wraparound;
    Alcotest.test_case "negative modulo" `Quick test_negative_modulo;
    Alcotest.test_case "float specials" `Quick test_float_specials;
    Alcotest.test_case "char truncation" `Quick test_char_truncation;
    Alcotest.test_case "null pointer faults" `Quick test_null_pointer_faults;
    Alcotest.test_case "3-D arrays" `Quick test_3d_arrays;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
    Alcotest.test_case "sizeof values" `Quick test_sizeof_values;
    Alcotest.test_case "null global initialisers" `Quick test_global_null_init;
    Alcotest.test_case "IR shift operators" `Quick test_shift_operators_ir;
    Alcotest.test_case "launch arity rejected" `Quick
      test_wrong_launch_arity_rejected;
    Alcotest.test_case "no trailing newline" `Quick test_no_trailing_newline;
    Alcotest.test_case "comment at EOF" `Quick test_comment_at_eof;
    Alcotest.test_case "non-canonical parallel-for" `Quick
      test_parallel_for_reduction_error;
  ]
