(* Tests for the IR: builder, CFG utilities, dominance, verifier. *)

module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Cfg = Cgcm_ir.Cfg
module Dominance = Cgcm_ir.Dominance
module Verifier = Cgcm_ir.Verifier
module Printer = Cgcm_ir.Printer

let check = Alcotest.check

let empty_modul () = { Ir.globals = []; funcs = [] }

(* A diamond: b0 -> b1/b2 -> b3 *)
let diamond () =
  let b = Builder.create ~name:"diamond" ~nargs:1 ~kind:Ir.Cpu in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let b3 = Builder.new_block b in
  Builder.cbr b (Ir.Reg 0) b1 b2;
  Builder.position_at b b1;
  let x = Builder.binop b Ir.Add (Ir.Reg 0) (Ir.imm 1) in
  Builder.br b b3;
  Builder.position_at b b2;
  let y = Builder.binop b Ir.Mul (Ir.Reg 0) (Ir.imm 2) in
  Builder.br b b3;
  Builder.position_at b b3;
  Builder.ret b (Some (Ir.Reg 0));
  ignore (x, y);
  Builder.finish b

let test_builder_diamond () =
  let f = diamond () in
  check Alcotest.int "blocks" 4 (Array.length f.Ir.blocks);
  check Alcotest.int "b1 instrs" 1 (List.length f.Ir.blocks.(1).Ir.instrs);
  check Alcotest.(list int) "succs of 0" [ 1; 2 ] (Cfg.succs f 0);
  check Alcotest.(list int) "succs of 3" [] (Cfg.succs f 3)

let test_preds_rpo () =
  let f = diamond () in
  let preds = Cfg.preds f in
  check Alcotest.(list int) "preds of 3" [ 2; 1 ] preds.(3);
  let rpo = Cfg.reverse_postorder f in
  check Alcotest.int "rpo head" 0 (List.hd rpo);
  check Alcotest.int "rpo length" 4 (List.length rpo);
  check Alcotest.int "rpo last" 3 (List.nth rpo 3)

let test_dominance () =
  let f = diamond () in
  let dom = Dominance.compute f in
  check Alcotest.bool "0 dom 3" true (Dominance.dominates dom 0 3);
  check Alcotest.bool "1 !dom 3" false (Dominance.dominates dom 1 3);
  check Alcotest.bool "self" true (Dominance.dominates dom 1 1);
  check Alcotest.int "idom of 3" 0 (Dominance.idom dom 3)

let test_verifier_accepts () =
  let m = empty_modul () in
  Ir.add_func m (diamond ());
  Verifier.verify_modul m

let expect_ill_formed f =
  match f () with
  | exception Verifier.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed"

let test_verifier_bad_branch () =
  let m = empty_modul () in
  let f = diamond () in
  f.Ir.blocks.(1).Ir.term <- Ir.Br 99;
  Ir.add_func m f;
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let test_verifier_double_def () =
  let m = empty_modul () in
  let b = Builder.create ~name:"dd" ~nargs:0 ~kind:Ir.Cpu in
  Builder.insert b (Ir.Binop (0, Ir.Add, Ir.imm 1, Ir.imm 2));
  Builder.insert b (Ir.Binop (0, Ir.Add, Ir.imm 3, Ir.imm 4));
  Builder.ret b None;
  let f = Builder.finish b in
  f.Ir.nregs <- 1;
  Ir.add_func m f;
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let test_verifier_use_before_def () =
  let m = empty_modul () in
  let b = Builder.create ~name:"ubd" ~nargs:0 ~kind:Ir.Cpu in
  let _ = Builder.binop b Ir.Add (Ir.Reg 1) (Ir.imm 1) in
  (* reg 1 defined after use *)
  let _ = Builder.binop b Ir.Add (Ir.imm 1) (Ir.imm 2) in
  Builder.ret b None;
  Ir.add_func m (Builder.finish b);
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let test_verifier_def_not_dominating () =
  (* def in one arm of a diamond, use in the join *)
  let m = empty_modul () in
  let b = Builder.create ~name:"ndom" ~nargs:1 ~kind:Ir.Cpu in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let b3 = Builder.new_block b in
  Builder.cbr b (Ir.Reg 0) b1 b2;
  Builder.position_at b b1;
  let x = Builder.binop b Ir.Add (Ir.Reg 0) (Ir.imm 1) in
  Builder.br b b3;
  Builder.position_at b b2;
  Builder.br b b3;
  Builder.position_at b b3;
  Builder.ret b (Some x);
  Ir.add_func m (Builder.finish b);
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let test_verifier_unknown_global () =
  let m = empty_modul () in
  let b = Builder.create ~name:"g" ~nargs:0 ~kind:Ir.Cpu in
  let _ = Builder.load b Ir.I64 (Ir.Global "nope") in
  Builder.ret b None;
  Ir.add_func m (Builder.finish b);
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let test_verifier_launch_rules () =
  let m = empty_modul () in
  (* a kernel *)
  let kb = Builder.create ~name:"k" ~nargs:1 ~kind:Ir.Kernel in
  Builder.ret kb None;
  Ir.add_func m (Builder.finish kb);
  (* launching an unknown kernel is rejected *)
  let b = Builder.create ~name:"bad" ~nargs:0 ~kind:Ir.Cpu in
  Builder.launch b ~kernel:"nokernel" ~trip:(Ir.imm 1) ~args:[];
  Builder.ret b None;
  Ir.add_func m (Builder.finish b);
  expect_ill_formed (fun () -> Verifier.verify_modul m);
  (* direct call of a kernel is rejected *)
  let m2 = empty_modul () in
  let kb = Builder.create ~name:"k" ~nargs:1 ~kind:Ir.Kernel in
  Builder.ret kb None;
  Ir.add_func m2 (Builder.finish kb);
  let b = Builder.create ~name:"bad2" ~nargs:0 ~kind:Ir.Cpu in
  Builder.call_void b "k" [ Ir.imm 0 ];
  Builder.ret b None;
  Ir.add_func m2 (Builder.finish b);
  expect_ill_formed (fun () -> Verifier.verify_modul m2)

let test_verifier_global_init_size () =
  let m = empty_modul () in
  m.Ir.globals <-
    [ { Ir.gname = "g"; gsize = 8; ginit = Ir.I64s [| 1L; 2L |];
        gread_only = false } ];
  expect_ill_formed (fun () -> Verifier.verify_modul m)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_printer_roundtrippable_names () =
  let f = diamond () in
  let s = Printer.func_to_string f in
  check Alcotest.bool "mentions b3" true (contains_sub s "b3:");
  check Alcotest.bool "mentions cbr" true (contains_sub s "cbr %r0, b1, b2");
  check Alcotest.bool "mentions mul" true (contains_sub s "mul %r0, 2")

let test_helpers () =
  let i = Ir.Binop (5, Ir.Add, Ir.Reg 1, Ir.imm 2) in
  check Alcotest.(option int) "def" (Some 5) (Ir.def_of_instr i);
  check Alcotest.int "uses" 2 (List.length (Ir.uses_of_instr i));
  let l = Ir.Launch { kernel = "k"; trip = Ir.Reg 0; args = [ Ir.Reg 1 ] } in
  check Alcotest.(option int) "launch no def" None (Ir.def_of_instr l);
  check Alcotest.int "launch uses" 2 (List.length (Ir.uses_of_instr l))

let tests =
  [
    Alcotest.test_case "builder diamond" `Quick test_builder_diamond;
    Alcotest.test_case "preds + rpo" `Quick test_preds_rpo;
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "verifier accepts" `Quick test_verifier_accepts;
    Alcotest.test_case "verifier: bad branch" `Quick test_verifier_bad_branch;
    Alcotest.test_case "verifier: double def" `Quick test_verifier_double_def;
    Alcotest.test_case "verifier: use before def" `Quick
      test_verifier_use_before_def;
    Alcotest.test_case "verifier: non-dominating def" `Quick
      test_verifier_def_not_dominating;
    Alcotest.test_case "verifier: unknown global" `Quick
      test_verifier_unknown_global;
    Alcotest.test_case "verifier: launch rules" `Quick test_verifier_launch_rules;
    Alcotest.test_case "verifier: global init size" `Quick
      test_verifier_global_init_size;
    Alcotest.test_case "printer output" `Quick test_printer_roundtrippable_names;
    Alcotest.test_case "instr helpers" `Quick test_helpers;
  ]
