(* Serialization round-trip: every module printed by Printer must be
   re-readable by Reader, verify, print identically, and execute
   identically. Exercised over hand-written cases and the whole benchmark
   suite at every optimization level. *)

module Ir = Cgcm_ir.Ir
module Printer = Cgcm_ir.Printer
module Reader = Cgcm_ir.Reader
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp

let check = Alcotest.check

let roundtrip_text (m : Ir.modul) =
  let s1 = Printer.modul_to_string m in
  let m2 = Reader.parse_verified s1 in
  let s2 = Printer.modul_to_string m2 in
  if s1 <> s2 then
    Alcotest.failf "round trip changed the module:\n--- first:\n%s\n--- second:\n%s" s1 s2;
  m2

let test_small_roundtrip () =
  let src =
    "readonly global int limit = 3;\n\
     global float data[4] = {1.0, 2.5, -3.0, 0.25};\n\
     global char msg[] = \"hi\\n\";\n\
     global char* tbl[2] = {msg, 0};\n\
     kernel void k(int tid, float* p) { p[tid] = p[tid] * 2.0; }\n\
     int main() {\n\
     launch k<4>((float*) data);\n\
     float s = 0.0;\n\
     for (int i = 0; i < 4; i++) { s = s + data[i]; }\n\
     print(s); prints(msg); print(limit);\n\
     return 0; }"
  in
  let c = Pipeline.compile ~level:Pipeline.Optimized src in
  let m2 = roundtrip_text c.Pipeline.modul in
  (* the re-read module executes identically *)
  let r1 = Interp.run c.Pipeline.modul in
  let r2 = Interp.run m2 in
  check Alcotest.string "same output" r1.Interp.output r2.Interp.output;
  check (Alcotest.float 1e-6) "same wall clock" r1.Interp.wall r2.Interp.wall

let test_suite_roundtrip () =
  (* all 24 programs at small sizes, at every pipeline level *)
  List.iter
    (fun (p : Cgcm_progs.Registry.program) ->
      List.iter
        (fun level ->
          let c = Pipeline.compile ~level p.Cgcm_progs.Registry.source in
          ignore (roundtrip_text c.Pipeline.modul))
        [ Pipeline.Unmanaged; Pipeline.Managed; Pipeline.Optimized ])
    Cgcm_progs.Registry.all

let test_reader_errors () =
  let expect_bad s =
    match Reader.parse s with
    | exception Reader.Bad_ir _ -> ()
    | _ -> Alcotest.fail ("expected Bad_ir on: " ^ s)
  in
  expect_bad "nonsense at top level";
  expect_bad "func f(2 args, 2 regs) {\nb0:\n  %r2 = frobnicate %r0\n  ret\n}";
  expect_bad "func f(0 args, 0 regs) {\nb0:\n  jumpity b1\n}";
  expect_bad "func f(0 args, 0 regs) {\nb0:\n  %r0 = add 1\n  ret\n}";
  (* missing terminator before the close brace *)
  expect_bad "func f(0 args, 1 regs) {\nb0:\n  %r0 = add 1, 2\n}"

let test_verified_rejects_ill_formed () =
  (* syntactically fine but semantically broken: branch out of range *)
  let s = "func main(0 args, 0 regs) {\nb0:\n  br b7\n}" in
  match Reader.parse_verified s with
  | exception Cgcm_ir.Verifier.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed"

let test_float_immediates_lossless () =
  (* hex-float printing must preserve exact bit patterns *)
  let values = [ 0.1; -3.25; 1e-300; Float.max_float; 0.0 ] in
  List.iter
    (fun v ->
      let b = Cgcm_ir.Builder.create ~name:"main" ~nargs:0 ~kind:Ir.Cpu in
      Cgcm_ir.Builder.call_void b "print_f64" [ Ir.Imm_float v ];
      Cgcm_ir.Builder.ret b (Some (Ir.imm 0));
      let m = { Ir.globals = []; funcs = [ Cgcm_ir.Builder.finish b ] } in
      let m2 = roundtrip_text m in
      match (List.hd m2.Ir.funcs).Ir.blocks.(0).Ir.instrs with
      | [ Ir.Call (_, _, [ Ir.Imm_float v' ]) ] ->
        if Int64.bits_of_float v <> Int64.bits_of_float v' then
          Alcotest.failf "float %h round-tripped to %h" v v'
      | _ -> Alcotest.fail "unexpected shape")
    values

let tests =
  [
    Alcotest.test_case "small module round trip" `Quick test_small_roundtrip;
    Alcotest.test_case "24-program round trip (3 levels)" `Slow
      test_suite_roundtrip;
    Alcotest.test_case "reader errors" `Quick test_reader_errors;
    Alcotest.test_case "verified reader rejects" `Quick
      test_verified_rejects_ill_formed;
    Alcotest.test_case "float immediates lossless" `Quick
      test_float_immediates_lossless;
  ]
