(* Tests for the report renderers and the benchmark-source templating. *)

module Table = Cgcm_report.Table
module Chart = Cgcm_report.Chart
module Template = Cgcm_progs.Template

let check = Alcotest.check

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let s =
    Table.render
      ~aligns:[ Table.Left; Table.Right ]
      ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header, separator, two rows, trailing newline *)
  check Alcotest.int "line count" 5 (List.length lines);
  (* all rows padded to the same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  check Alcotest.bool "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  (* right alignment puts the short number at the end of its column *)
  let last_row = List.nth (String.split_on_char '\n' s) 3 in
  check Alcotest.bool "right aligned" true
    (String.length last_row > 2
    && String.sub last_row (String.length last_row - 2) 2 = "22"
    && String.length last_row
       = String.length (List.hd (String.split_on_char '\n' s)))

let test_table_ragged_rows () =
  (* extra cells beyond the header are ignored, missing are fine *)
  let s =
    Table.render ~header:[ "a"; "b" ] [ [ "1" ]; [ "2"; "3"; "IGNORED" ] ]
  in
  check Alcotest.bool "renders" true (String.length s > 0);
  check Alcotest.bool "ignores extras" false (contains_sub s "IGNORED")

let test_chart_speedups () =
  let s =
    Chart.speedups
      [
        ("prog-a", [ ("mode1", 4.0); ("mode2", 0.5) ]);
        ("prog-b", [ ("mode1", 1.0); ("mode2", 100.0) ]);
      ]
  in
  check Alcotest.bool "program names" true (contains_sub s "prog-a");
  check Alcotest.bool "values shown" true (contains_sub s "4.00x");
  check Alcotest.bool "clamps at hi" true (contains_sub s "100.00x");
  (* bars grow with the value *)
  let bar_len v =
    String.length (Chart.log_bar ~width:48 ~lo:0.01 ~hi:100.0 v)
  in
  check Alcotest.bool "monotone bars" true
    (bar_len 0.5 < bar_len 4.0 && bar_len 4.0 < bar_len 50.0);
  check Alcotest.int "hi clamp" (bar_len 100.0) (bar_len 1e9);
  check Alcotest.int "lo clamp" (bar_len 0.01) (bar_len 1e-9)

let test_template_subst () =
  check Alcotest.string "basic" "for i < 64; x = 64"
    (Template.subst [ ("N", 64) ] "for i < @N; x = @N");
  (* longest key first: @NSTEPS must not be corrupted by @N *)
  check Alcotest.string "longest first" "10 64"
    (Template.subst [ ("N", 64); ("NSTEPS", 10) ] "@NSTEPS @N");
  (* suffix characters block substitution *)
  check Alcotest.string "word boundary" "@NX 7"
    (Template.subst [ ("N", 7) ] "@NX @N");
  check Alcotest.string "no placeholders" "plain"
    (Template.subst [ ("N", 1) ] "plain")

let tests =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "chart speedups" `Quick test_chart_speedups;
    Alcotest.test_case "template subst" `Quick test_template_subst;
  ]
