test/test_pipeline.ml: Alcotest Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_progs List Printf QCheck2 QCheck_alcotest
