test/test_interp.ml: Alcotest Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_memory
