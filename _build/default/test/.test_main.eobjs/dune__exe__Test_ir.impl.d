test/test_ir.ml: Alcotest Array Cgcm_ir List String
