test/test_runtime.ml: Alcotest Array Cgcm_gpusim Cgcm_memory Cgcm_runtime Int64 List QCheck2 QCheck_alcotest
