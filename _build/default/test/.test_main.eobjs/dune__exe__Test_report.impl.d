test/test_report.ml: Alcotest Cgcm_progs Cgcm_report List String
