test/test_analysis.ml: Alcotest Array Cgcm_analysis Cgcm_frontend Cgcm_ir Fmt List
