test/test_transform.ml: Alcotest Array Cgcm_analysis Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_ir Cgcm_transform List String
