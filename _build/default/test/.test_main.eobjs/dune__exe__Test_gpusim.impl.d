test/test_gpusim.ml: Alcotest Cgcm_gpusim Cgcm_memory List String
