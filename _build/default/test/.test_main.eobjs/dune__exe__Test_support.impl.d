test/test_support.ml: Alcotest Cgcm_support Fun List Option QCheck2 QCheck_alcotest
