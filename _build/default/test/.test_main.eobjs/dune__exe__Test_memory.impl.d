test/test_memory.ml: Alcotest Cgcm_memory Int64 List QCheck2 QCheck_alcotest
