test/test_bench_progs.ml: Alcotest Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_progs List
