test/test_advanced.ml: Alcotest Cgcm_analysis Cgcm_core Cgcm_frontend Cgcm_gpusim Cgcm_interp Cgcm_ir Cgcm_progs List Printf String
