test/test_reader.ml: Alcotest Array Cgcm_core Cgcm_interp Cgcm_ir Cgcm_progs Float Int64 List
