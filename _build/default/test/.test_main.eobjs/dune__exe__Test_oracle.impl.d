test/test_oracle.ml: Array Cgcm_core Cgcm_interp Int64 Printf QCheck2 QCheck_alcotest
