test/test_infra.ml: Alcotest Array Cgcm_analysis Cgcm_core Cgcm_ir Cgcm_progs Cgcm_transform List String
