test/test_simplify.ml: Alcotest Array Cgcm_core Cgcm_interp Cgcm_ir Cgcm_transform Fmt
