test/test_frontend.ml: Alcotest Array Cgcm_frontend Cgcm_ir Cgcm_progs List Option
