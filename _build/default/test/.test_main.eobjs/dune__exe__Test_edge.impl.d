test/test_edge.ml: Alcotest Cgcm_core Cgcm_frontend Cgcm_interp Cgcm_ir
