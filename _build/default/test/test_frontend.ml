(* Tests for the CGC frontend: lexer, parser, pretty-printer round trips,
   lowering and its semantic checks. *)

module Token = Cgcm_frontend.Token
module Lexer = Cgcm_frontend.Lexer
module Parser = Cgcm_frontend.Parser
module Ast = Cgcm_frontend.Ast
module Lower = Cgcm_frontend.Lower
module Affine = Cgcm_frontend.Affine
module Ir = Cgcm_ir.Ir

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let toks src =
  Array.to_list (Lexer.tokenize src) |> List.map (fun l -> l.Lexer.tok)

let test_lex_basic () =
  check Alcotest.int "count" 6
    (List.length (toks "int x = 42;"));  (* int x = 42 ; EOF *)
  match toks "x <= 10 && y != 3.5" with
  | [ IDENT "x"; LE; INT_LIT 10L; AMPAMP; IDENT "y"; NE; FLOAT_LIT f; EOF ] ->
    check (Alcotest.float 0.0) "float" 3.5 f
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_comments () =
  match toks "a // line comment\n /* block\n comment */ b" with
  | [ IDENT "a"; IDENT "b"; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_ops () =
  match toks "+= -= *= /= ++ -- == !=" with
  | [ PLUSEQ; MINUSEQ; STAREQ; SLASHEQ; PLUSPLUS; MINUSMINUS; EQEQ; NE; EOF ]
    ->
    ()
  | _ -> Alcotest.fail "operator tokens"

let test_lex_string_escapes () =
  match toks {|"a\nb\"c"|} with
  | [ STRING_LIT "a\nb\"c"; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lex_errors () =
  let expect_err src =
    match Lexer.tokenize src with
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail ("expected lex error on " ^ src)
  in
  expect_err "\"unterminated";
  expect_err "/* unterminated";
  expect_err "#"

let test_lex_positions () =
  let l = Lexer.tokenize "a\n  b" in
  check Alcotest.int "line of b" 2 l.(1).Lexer.pos.Lexer.line;
  check Alcotest.int "col of b" 3 l.(1).Lexer.pos.Lexer.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parse = Parser.parse_string

let test_parse_global () =
  match parse "global float A[4][8];" with
  | [ Ast.Global_decl g ] ->
    check Alcotest.string "name" "A" g.Ast.g_name;
    check Alcotest.bool "type" true (g.Ast.g_ty = Ast.Arr (Ast.Float, [ 4; 8 ]))
  | _ -> Alcotest.fail "global parse"

let test_parse_precedence () =
  match parse "int f() { return 1 + 2 * 3 < 4 == 0; }" with
  | [ Ast.Func_decl { f_body = [ Ast.Return (Some e) ]; _ } ] ->
    (* ((1 + (2*3)) < 4) == 0 *)
    let expect =
      Ast.Binary
        ( Ast.Beq,
          Ast.Binary
            ( Ast.Blt,
              Ast.Binary
                (Ast.Badd, Ast.Int_lit 1L,
                 Ast.Binary (Ast.Bmul, Ast.Int_lit 2L, Ast.Int_lit 3L)),
              Ast.Int_lit 4L ),
          Ast.Int_lit 0L )
    in
    check Alcotest.bool "precedence" true (e = expect)
  | _ -> Alcotest.fail "parse"

let test_parse_cast_vs_paren () =
  match parse "int f(int x) { return (int)x + (x); }" with
  | [ Ast.Func_decl { f_body = [ Ast.Return (Some e) ]; _ } ] ->
    let expect =
      Ast.Binary (Ast.Badd, Ast.Cast (Ast.Int, Ast.Ident "x"), Ast.Ident "x")
    in
    check Alcotest.bool "cast" true (e = expect)
  | _ -> Alcotest.fail "parse"

let test_parse_pointer_types () =
  match parse "void f(float** p, char* s) { }" with
  | [ Ast.Func_decl { f_params; _ } ] ->
    check Alcotest.bool "params" true
      (f_params
      = [ (Ast.Ptr (Ast.Ptr Ast.Float), "p"); (Ast.Ptr Ast.Char, "s") ])
  | _ -> Alcotest.fail "parse"

let test_parse_parallel_for () =
  match parse "void f() { parallel for (int i = 0; i < 8; i++) { } }" with
  | [ Ast.Func_decl { f_body = [ Ast.For { parallel = true; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "parallel for"

let test_parse_launch () =
  match parse "kernel void k(int t) {} void f() { launch k<10>(); }" with
  | [ _; Ast.Func_decl { f_body = [ Ast.Launch_stmt ("k", Ast.Int_lit 10L, []) ]; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "launch"

let test_parse_ternary_shortcircuit () =
  match parse "int f(int x) { return x > 0 ? x : -x; }" with
  | [ Ast.Func_decl { f_body = [ Ast.Return (Some (Ast.Cond _)) ]; _ } ] -> ()
  | _ -> Alcotest.fail "ternary"

let test_parse_errors () =
  let expect_err src =
    match parse src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error on: " ^ src)
  in
  expect_err "int f( { }";
  expect_err "void f() { int; }";
  expect_err "void f() { x = ; }";
  expect_err "global int a[0";
  expect_err "void f() { for (;;) }"

(* Round-trip: pretty-print then re-parse gives the same AST. *)
let test_roundtrip_programs () =
  let sources =
    [
      "global float A[8][8];\nvoid f(int n) { for (int i = 0; i < n; i++) { A[i][0] = i * 2.0; } }\nint main() { f(8); return 0; }";
      "int main() { int x = 3; while (x > 0) { x = x - 1; if (x == 1) { break; } } print(x); return 0; }";
      "kernel void k(int t, float* p) { p[t] = t; }\nint main() { launch k<4>((float*)malloc(32)); return 0; }";
    ]
  in
  List.iter
    (fun src ->
      let ast1 = parse src in
      let printed = Ast.program_to_string ast1 in
      let ast2 = parse printed in
      if ast1 <> ast2 then
        Alcotest.fail ("round trip failed for:\n" ^ printed))
    sources

(* Round-trip the entire 24-program benchmark suite. *)
let test_roundtrip_suite () =
  List.iter
    (fun (p : Cgcm_progs.Registry.program) ->
      let ast1 = parse p.Cgcm_progs.Registry.source in
      let printed = Ast.program_to_string ast1 in
      let ast2 = parse printed in
      if ast1 <> ast2 then
        Alcotest.fail ("round trip failed for " ^ p.Cgcm_progs.Registry.name))
    Cgcm_progs.Registry.all

(* ------------------------------------------------------------------ *)
(* Lowering and semantic checks                                        *)

let lower src = Lower.lower_program (parse src)

let test_lower_simple () =
  let m = lower "int main() { int x = 2; int y = x * 21; print(y); return y; }" in
  check Alcotest.int "one function" 1 (List.length m.Ir.funcs);
  Cgcm_ir.Verifier.verify_modul m

let test_lower_errors () =
  let expect_err src =
    match lower src with
    | exception Lower.Sema_error _ -> ()
    | _ -> Alcotest.fail ("expected sema error on: " ^ src)
  in
  expect_err "int main() { return y; }";  (* unknown variable *)
  expect_err "int main() { int x = 1; int x = 2; return 0; }";  (* redecl *)
  expect_err "void f() {} int main() { f(1); return 0; }";  (* arity *)
  expect_err "int main() { break; return 0; }";  (* break outside loop *)
  expect_err "void main() { }";  (* main signature *)
  expect_err "int f() { return 0; }";  (* no main *)
  (* a *** local on the CPU side is legal (the restriction is on kernel
     live-ins); three levels of indirection on a kernel parameter is
     rejected *)
  (match
     lower "kernel void k(int t, float*** p) {} int main() { return 0; }"
   with
  | exception Lower.Sema_error _ -> ()
  | _ -> Alcotest.fail "expected indirection error");
  (* kernels must not store pointers into memory *)
  expect_err
    "global float* buf[4];\n\
     kernel void k(int t, float** a, float* p) { a[t] = p; }\n\
     int main() { return 0; }";
  (* kernel's first parameter is the thread index *)
  expect_err "kernel void k(float x) {} int main() { return 0; }";
  (* kernels cannot call user functions *)
  expect_err
    "void helper() {}\n\
     kernel void k(int t) { helper(); }\n\
     int main() { return 0; }"

let test_lower_globals () =
  let m =
    lower
      "readonly global int limit = 5;\n\
       global float data[4] = {1.0, 2.0, 3.0, 4.0};\n\
       global char msg[] = \"hi\";\n\
       int main() { return limit; }"
  in
  let g name = Option.get (Ir.find_global m name) in
  check Alcotest.bool "readonly" true (g "limit").Ir.gread_only;
  check Alcotest.int "msg size" 3 (g "msg").Ir.gsize;
  check Alcotest.int "data size" 32 (g "data").Ir.gsize

let test_lower_ptr_globals () =
  let m =
    lower
      "global char a[] = \"x\";\n\
       global char b[] = \"y\";\n\
       global char* tbl[2] = {a, b};\n\
       int main() { return 0; }"
  in
  match (Option.get (Ir.find_global m "tbl")).Ir.ginit with
  | Ir.Ptrs [| "a"; "b" |] -> ()
  | _ -> Alcotest.fail "pointer global initialiser"

(* ------------------------------------------------------------------ *)
(* Constant folding / affine forms                                     *)

let test_const_eval () =
  let e = Parser.parse_string "int main() { return (64 - 1) * 2 + 6 / 3; }" in
  match e with
  | [ Ast.Func_decl { f_body = [ Ast.Return (Some expr) ]; _ } ] ->
    check Alcotest.(option int) "folded" (Some 128) (Affine.const_eval expr)
  | _ -> Alcotest.fail "parse"

let test_affine_forms () =
  let env =
    {
      Affine.parallel_var = "i";
      inner = [ ("j", (0, 9)) ];
      modified = [ "tmp" ];
    }
  in
  let expr_of src =
    match Parser.parse_string ("int main() { return " ^ src ^ "; }") with
    | [ Ast.Func_decl { f_body = [ Ast.Return (Some e) ]; _ } ] -> e
    | _ -> assert false
  in
  (* i*16 + j + 3: coefficient 16, range [3, 12] *)
  (match Affine.of_expr env (expr_of "i * 16 + j + 3") with
  | Some f ->
    check Alcotest.int "icoeff" 16 f.Affine.icoeff;
    check Alcotest.int "lo" 3 f.Affine.lo;
    check Alcotest.int "hi" 12 f.Affine.hi
  | None -> Alcotest.fail "affine");
  (* modified variables are not affine *)
  check Alcotest.bool "tmp rejected" true
    (Affine.of_expr env (expr_of "i + tmp") = None);
  (* invariant atoms *)
  (match Affine.of_expr env (expr_of "i * 8 + n * 4") with
  | Some f -> check Alcotest.int "inv atoms" 1 (List.length f.Affine.inv)
  | None -> Alcotest.fail "invariant affine");
  (* i*j is not affine *)
  check Alcotest.bool "i*j rejected" true
    (Affine.of_expr env (expr_of "i * j") = None)

let test_structs () =
  (* layout: chars pack, words align to 8 *)
  (match parse "struct s { char c; int n; float f; };" with
  | [ Ast.Struct_decl sd ] ->
    check Alcotest.int "size" 24 sd.Ast.s_size;
    check Alcotest.bool "offsets" true
      (sd.Ast.s_fields
      = [ ("c", (0, Ast.Char)); ("n", (8, Ast.Int)); ("f", (16, Ast.Float)) ])
  | _ -> Alcotest.fail "struct parse");
  (* field access + pointer-to-struct, end to end *)
  let m =
    lower
      "struct point { float x; float y; };\n\
       global struct point pts[4];\n\
       int main() {\n\
       pts[1].x = 2.5; \n\
       struct point* p = &pts[1];\n\
       p->y = p->x * 2.0;\n\
       return (int) pts[1].y;\n\
       }"
  in
  Cgcm_ir.Verifier.verify_modul m;
  (* errors *)
  let expect_err src =
    match lower src with
    | exception Lower.Sema_error _ -> ()
    | _ -> Alcotest.fail ("expected sema error on: " ^ src)
  in
  expect_err
    "struct s { int a; };\nint main() { struct s v; v.b = 1; return 0; }";
  expect_err
    "struct s { int a; };\nvoid id(struct s v) { }\nint main() { return 0; }";
  expect_err
    "struct s { int a; };\nint main() { struct s u; struct s v; u = v; return 0; }";
  (* undefined struct use *)
  (match parse "int main() { struct nope v; return 0; }" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected undefined-struct error")

let test_struct_roundtrip () =
  let src =
    "struct point {\nfloat x;\nfloat y;\n};\n\
     global struct point pts[4];\n\
     int main() { pts[0].x = 1.0; struct point* p = &pts[0]; p->y = 2.0;\n\
     print(pts[0].x + pts[0].y); return 0; }"
  in
  let ast1 = parse src in
  let printed = Ast.program_to_string ast1 in
  let ast2 = parse printed in
  if ast1 <> ast2 then Alcotest.fail ("struct round trip:\n" ^ printed)

let test_cross_iteration_overlap () =
  (* write a*i + [0,9], read a*i + [0,9], a = 16: disjoint *)
  check Alcotest.bool "disjoint" false
    (Affine.cross_iteration_overlap ~a:16 ~w:(0, 9) ~r:(0, 9));
  (* stencil: read at offset -16 with a = 16 overlaps the previous row *)
  check Alcotest.bool "stencil conflict" true
    (Affine.cross_iteration_overlap ~a:16 ~w:(0, 9) ~r:(-16, -7));
  (* footprint wider than the stride overlaps *)
  check Alcotest.bool "wide footprint" true
    (Affine.cross_iteration_overlap ~a:4 ~w:(0, 9) ~r:(0, 9));
  (* a = 0 always conflicts *)
  check Alcotest.bool "zero stride" true
    (Affine.cross_iteration_overlap ~a:0 ~w:(0, 0) ~r:(0, 0))

let tests =
  [
    Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex operators" `Quick test_lex_ops;
    Alcotest.test_case "lex string escapes" `Quick test_lex_string_escapes;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "lex positions" `Quick test_lex_positions;
    Alcotest.test_case "parse global" `Quick test_parse_global;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse cast vs paren" `Quick test_parse_cast_vs_paren;
    Alcotest.test_case "parse pointer types" `Quick test_parse_pointer_types;
    Alcotest.test_case "parse parallel for" `Quick test_parse_parallel_for;
    Alcotest.test_case "parse launch" `Quick test_parse_launch;
    Alcotest.test_case "parse ternary" `Quick test_parse_ternary_shortcircuit;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "round trip programs" `Quick test_roundtrip_programs;
    Alcotest.test_case "round trip 24-program suite" `Quick
      test_roundtrip_suite;
    Alcotest.test_case "lower simple" `Quick test_lower_simple;
    Alcotest.test_case "lower errors" `Quick test_lower_errors;
    Alcotest.test_case "lower globals" `Quick test_lower_globals;
    Alcotest.test_case "lower pointer globals" `Quick test_lower_ptr_globals;
    Alcotest.test_case "const eval" `Quick test_const_eval;
    Alcotest.test_case "affine forms" `Quick test_affine_forms;
    Alcotest.test_case "cross-iteration overlap" `Quick
      test_cross_iteration_overlap;
    Alcotest.test_case "structs" `Quick test_structs;
    Alcotest.test_case "struct round trip" `Quick test_struct_roundtrip;
  ]
