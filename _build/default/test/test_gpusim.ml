(* Tests for the GPU simulator: cost model arithmetic, device timeline
   semantics (async launches, synchronising transfers), named module
   globals, and the trace machinery. *)

module Cost_model = Cgcm_gpusim.Cost_model
module Device = Cgcm_gpusim.Device
module Trace = Cgcm_gpusim.Trace
module Memspace = Cgcm_memory.Memspace

let check = Alcotest.check

let cm = Cost_model.default

let test_transfer_cycles () =
  let t0 = Cost_model.transfer_cycles cm 0 in
  let t1 = Cost_model.transfer_cycles cm 1024 in
  check (Alcotest.float 1e-9) "latency floor" cm.Cost_model.transfer_latency t0;
  check (Alcotest.float 1e-9) "bandwidth term"
    (cm.Cost_model.transfer_latency
    +. (1024.0 /. cm.Cost_model.transfer_bytes_per_cycle))
    t1

let test_kernel_cycles () =
  (* more threads = more parallelism, up to the core count *)
  let small = Cost_model.kernel_cycles cm ~insts:100_000 ~trip:10 in
  let big = Cost_model.kernel_cycles cm ~insts:100_000 ~trip:480 in
  let huge = Cost_model.kernel_cycles cm ~insts:100_000 ~trip:100_000 in
  check Alcotest.bool "parallelism helps" true (big < small);
  check (Alcotest.float 1e-6) "saturates at the core count" big huge;
  (* zero-work kernel still pays the launch overhead *)
  check (Alcotest.float 1e-9) "launch overhead"
    cm.Cost_model.launch_overhead_gpu
    (Cost_model.kernel_cycles cm ~insts:0 ~trip:1)

let mk_host () =
  Memspace.create ~name:"h" ~range_lo:0x10_0000 ~range_hi:0x1000_0000

let test_device_alloc_and_copy () =
  let host = mk_host () in
  let dev = Device.create cm in
  let h = Memspace.alloc host 64 in
  Memspace.store_i64 host h 77L;
  let d, now = Device.mem_alloc dev ~now:0.0 64 in
  check Alcotest.bool "alloc charges time" true (now > 0.0);
  let now =
    Device.memcpy_h_to_d dev ~now ~host ~host_addr:h ~dev_addr:d ~len:64
  in
  check Alcotest.int64 "data arrived" 77L (Memspace.load_i64 dev.Device.mem d);
  Memspace.store_i64 dev.Device.mem d 88L;
  let _ =
    Device.memcpy_d_to_h dev ~now ~host ~host_addr:h ~dev_addr:d ~len:64
  in
  check Alcotest.int64 "data returned" 88L (Memspace.load_i64 host h);
  let st = Device.stats dev in
  check Alcotest.int "htod bytes" 64 st.Device.htod_bytes;
  check Alcotest.int "dtoh bytes" 64 st.Device.dtoh_bytes

let test_async_launch_then_sync () =
  let dev = Device.create cm in
  (* an async launch returns almost immediately on the CPU side... *)
  let cpu_after = Device.launch dev ~now:0.0 ~name:"k" ~insts:1_000_000 ~trip:480 in
  check (Alcotest.float 1e-9) "cpu pays only driver overhead"
    cm.Cost_model.launch_overhead_cpu cpu_after;
  (* ...while the device is busy until the kernel completes *)
  let synced = Device.sync dev ~now:cpu_after in
  check Alcotest.bool "sync waits" true (synced > cpu_after);
  (* back-to-back launches queue on the device timeline *)
  let dev2 = Device.create cm in
  let t1 = Device.launch dev2 ~now:0.0 ~name:"a" ~insts:500_000 ~trip:480 in
  let _t2 = Device.launch dev2 ~now:t1 ~name:"b" ~insts:500_000 ~trip:480 in
  let end2 = Device.sync dev2 ~now:0.0 in
  let solo = Device.create cm in
  let _ = Device.launch solo ~now:0.0 ~name:"a" ~insts:500_000 ~trip:480 in
  let end1 = Device.sync solo ~now:0.0 in
  check Alcotest.bool "two kernels take about twice as long" true
    (end2 > 1.8 *. end1)

let test_transfer_waits_for_kernels () =
  (* default-stream semantics: a DtoH copy waits for outstanding kernels *)
  let host = mk_host () in
  let dev = Device.create cm in
  let h = Memspace.alloc host 8 in
  let d, now = Device.mem_alloc dev ~now:0.0 8 in
  let now = Device.launch dev ~now ~name:"k" ~insts:2_000_000 ~trip:480 in
  let finish =
    Device.memcpy_d_to_h dev ~now ~host ~host_addr:h ~dev_addr:d ~len:8
  in
  check Alcotest.bool "copy synchronised with the kernel" true
    (finish > Cost_model.kernel_cycles cm ~insts:2_000_000 ~trip:480)

let test_module_globals () =
  let dev = Device.create cm in
  Device.declare_module_global dev ~name:"G" ~size:128;
  let a1, _ = Device.module_get_global dev ~now:0.0 "G" in
  let a2, _ = Device.module_get_global dev ~now:0.0 "G" in
  check Alcotest.int "stable address" a1 a2;
  (match Device.module_get_global dev ~now:0.0 "unknown" with
  | exception Memspace.Fault _ -> ()
  | _ -> Alcotest.fail "unknown module global must fault")

let test_trace_records_and_renders () =
  let tr = Trace.create ~enabled:true () in
  Trace.record tr Trace.Htod ~start:0.0 ~finish:10.0 ~label:"up" ~bytes:64;
  Trace.record tr Trace.Kernel ~start:10.0 ~finish:30.0 ~label:"k" ~bytes:0;
  Trace.record tr Trace.Dtoh ~start:30.0 ~finish:40.0 ~label:"down" ~bytes:64;
  check Alcotest.int "events" 3 (List.length (Trace.events tr));
  check Alcotest.int "kernels" 1 (Trace.count tr Trace.Kernel);
  let s = Trace.render tr in
  check Alcotest.bool "has lanes" true (String.length s > 0);
  check Alcotest.bool "kernel glyph" true (String.contains s 'K');
  check Alcotest.bool "htod glyph" true (String.contains s '>');
  check Alcotest.bool "dtoh glyph" true (String.contains s '<')

let test_trace_disabled_is_free () =
  let tr = Trace.create () in
  Trace.record tr Trace.Kernel ~start:0.0 ~finish:1.0 ~label:"k" ~bytes:0;
  check Alcotest.int "nothing recorded" 0 (List.length (Trace.events tr))

let tests =
  [
    Alcotest.test_case "transfer cycles" `Quick test_transfer_cycles;
    Alcotest.test_case "kernel cycles" `Quick test_kernel_cycles;
    Alcotest.test_case "device alloc + copy" `Quick test_device_alloc_and_copy;
    Alcotest.test_case "async launch + sync" `Quick test_async_launch_then_sync;
    Alcotest.test_case "transfers wait for kernels" `Quick
      test_transfer_waits_for_kernels;
    Alcotest.test_case "module globals" `Quick test_module_globals;
    Alcotest.test_case "trace record + render" `Quick
      test_trace_records_and_renders;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled_is_free;
  ]
